//! Process-global sink for `--metrics-out <path>`: when armed, every
//! DudeTM cell the measurement loop builds runs with a 10 ms continuous
//! sampler and appends its captured [`dudetm::MetricsFrame`] series to the
//! file as JSONL on teardown.
//!
//! A global (rather than a field threaded through [`crate::SpecCtx`])
//! because the spec runners construct systems many layers below the CLI
//! and the flag is an operator-facing diagnostic, not part of the
//! experiment definition — specs stay byte-identical with and without it.
//! Frames from successive cells concatenate in run order; `ts_ns` is a
//! process-wide monotonic clock, so the combined series stays
//! time-ordered even though `seq` restarts per cell.

use std::fs::OpenOptions;
use std::io::Write as _;
use std::sync::OnceLock;
use std::time::Duration;

use dudetm::{MetricsConfig, MetricsRegistry};

static SINK: OnceLock<String> = OnceLock::new();

/// Sampling cadence used for `--metrics-out` captures.
pub const SAMPLE_INTERVAL: Duration = Duration::from_millis(10);

/// Arms the sink: truncates `path` and makes [`config_for`] return an
/// enabled sampling configuration from now on. Call at most once, before
/// any cells run.
///
/// # Panics
///
/// Panics if the file cannot be created or the sink is already armed.
pub fn arm(path: &str) {
    std::fs::File::create(path)
        .unwrap_or_else(|e| panic!("--metrics-out: cannot create {path}: {e}"));
    SINK.set(path.to_string())
        .expect("--metrics-out armed twice");
}

/// Whether `--metrics-out` was given.
pub fn armed() -> bool {
    SINK.get().is_some()
}

/// The metrics configuration a DudeTM cell should run with: a 10 ms
/// sampler when the sink is armed, otherwise the environment's setting.
pub fn config_for(env_metrics: MetricsConfig) -> MetricsConfig {
    if armed() {
        MetricsConfig::sampling(SAMPLE_INTERVAL)
    } else {
        env_metrics
    }
}

/// Appends the registry's captured frames to the armed sink (no-op when
/// not armed). Called once per DudeTM cell after quiesce + final sample.
pub fn append(registry: &MetricsRegistry) {
    let Some(path) = SINK.get() else { return };
    let jsonl = registry.to_jsonl();
    if jsonl.is_empty() {
        return;
    }
    let mut f = OpenOptions::new()
        .append(true)
        .open(path)
        .unwrap_or_else(|e| panic!("--metrics-out: cannot open {path}: {e}"));
    f.write_all(jsonl.as_bytes())
        .unwrap_or_else(|e| panic!("--metrics-out: write to {path} failed: {e}"));
}
