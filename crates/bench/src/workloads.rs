//! The six paper benchmarks (§5.1) sized for this container, plus the
//! YCSB variants used by Figures 3 and 4.

use dude_txapi::{PAddr, TxnSystem};
use dude_workloads::bank::Bank;
use dude_workloads::driver::{load_workload, run_fixed_ops, RunConfig, RunStats, Workload};
use dude_workloads::hashtable::HashTable;
use dude_workloads::kv::{BTreeKv, HashKv};
use dude_workloads::micro::{BTreeInsertBench, HashInsertBench};
use dude_workloads::tatp::Tatp;
use dude_workloads::tpcc::{Tpcc, TpccParams};
use dude_workloads::ycsb::SessionStore;

use crate::env::BenchEnv;

/// Which paper benchmark a cell runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WorkloadKind {
    /// Random inserts into a fixed-size hash table.
    HashTable,
    /// Random inserts into a B+-tree.
    BTree,
    /// TPC-C New-Order with a B+-tree index.
    TpccBTree,
    /// TPC-C New-Order with a hash index.
    TpccHash,
    /// TPC-C New-Order, B+-tree index, per-district partitioning
    /// (Figure 5's low-conflict variant).
    TpccBTreePartitioned,
    /// TATP Update-Location with a B+-tree index.
    TatpBTree,
    /// TATP Update-Location with a hash index.
    TatpHash,
    /// YCSB session store (50/50 read/update) over a B+-tree, given
    /// Zipfian constant.
    Ycsb {
        /// Zipfian skew (paper: 0.99).
        theta: f64,
    },
    /// Update-only YCSB over a B+-tree (Figure 4's swap workload).
    YcsbUpdate {
        /// Zipfian skew (paper: 0.99 and 1.07).
        theta: f64,
    },
    /// Random transfers between accounts.
    Bank,
}

impl WorkloadKind {
    /// Display label matching the paper's tables.
    pub fn label(&self) -> String {
        match self {
            WorkloadKind::HashTable => "HashTable".into(),
            WorkloadKind::BTree => "B+-tree".into(),
            WorkloadKind::TpccBTree => "TPC-C (B+-tree)".into(),
            WorkloadKind::TpccHash => "TPC-C (hash)".into(),
            WorkloadKind::TpccBTreePartitioned => "TPC-C (B+-tree, partitioned)".into(),
            WorkloadKind::TatpBTree => "TATP (B+-tree)".into(),
            WorkloadKind::TatpHash => "TATP (hash)".into(),
            WorkloadKind::Ycsb { theta } => format!("YCSB (B+-tree, zipf {theta})"),
            WorkloadKind::YcsbUpdate { theta } => format!("YCSB-update (zipf {theta})"),
            WorkloadKind::Bank => "Bank".into(),
        }
    }

    /// `true` if the workload only needs `declare_write`-compatible
    /// structures and therefore runs on the NVML-like baseline (the paper
    /// runs NVML on hash-based benchmarks only).
    pub fn nvml_compatible(&self) -> bool {
        matches!(
            self,
            WorkloadKind::HashTable
                | WorkloadKind::TpccHash
                | WorkloadKind::TatpHash
                | WorkloadKind::Bank
        )
    }
}

/// The base address where workload data starts (word 0 is reserved).
const BASE: u64 = 64;

/// Builds the workload for a cell, sized against the environment's heap.
pub fn build_workload(kind: WorkloadKind, env: &BenchEnv) -> Box<dyn Workload> {
    let heap_words = env.heap_bytes / 8;
    match kind {
        WorkloadKind::HashTable => {
            // ~16 MiB of buckets, 60 % max occupancy.
            let buckets = (heap_words / 4).min(1 << 20);
            Box::new(HashInsertBench::new(
                HashTable::new(PAddr::new(BASE), buckets),
                buckets * 6 / 10,
            ))
        }
        WorkloadKind::BTree => {
            let nodes = (heap_words / 36).min(1 << 18);
            Box::new(BTreeInsertBench::new(
                dude_workloads::btree::BTree::new(PAddr::new(BASE), nodes),
                nodes * 3,
            ))
        }
        WorkloadKind::TpccBTree | WorkloadKind::TpccHash | WorkloadKind::TpccBTreePartitioned => {
            let params = TpccParams {
                districts: 10,
                customers_per_district: 512,
                items: 10_000,
                max_orders: env.ops + 64 * env.threads as u64,
                partition_by_worker: matches!(kind, WorkloadKind::TpccBTreePartitioned),
                payment_pct: 0,
            };
            // Index first, tables after.
            let index_words = heap_words / 3;
            let tables = PAddr::from_word_index(BASE / 8 + index_words);
            let needed = Tpcc::<BTreeKv>::words_needed(&params);
            assert!(
                BASE / 8 + index_words + needed <= heap_words,
                "heap too small for TPC-C: need {needed} table words"
            );
            if matches!(kind, WorkloadKind::TpccHash) {
                let kv = HashKv::new(PAddr::new(BASE), index_words / 2 - 8);
                Box::new(Tpcc::new(kv, tables, params, &kind.label()))
            } else {
                let kv = BTreeKv::new(PAddr::new(BASE), index_words / 18 - 8);
                Box::new(Tpcc::new(kv, tables, params, &kind.label()))
            }
        }
        WorkloadKind::TatpBTree | WorkloadKind::TatpHash => {
            let subscribers: u64 = 100_000;
            let index_words = heap_words / 2;
            let records = PAddr::from_word_index(BASE / 8 + index_words);
            assert!(
                BASE / 8 + index_words + Tatp::<HashKv>::record_words(subscribers) <= heap_words
            );
            if matches!(kind, WorkloadKind::TatpHash) {
                let kv = HashKv::new(PAddr::new(BASE), (subscribers * 2).max(1024));
                Box::new(Tatp::new(kv, records, subscribers, &kind.label()))
            } else {
                let kv = BTreeKv::new(PAddr::new(BASE), (subscribers / 3).max(1024));
                Box::new(Tatp::new(kv, records, subscribers, &kind.label()))
            }
        }
        WorkloadKind::Ycsb { theta } => {
            let records = 10_000; // paper: 10 K records
            let kv = BTreeKv::new(PAddr::new(BASE), (heap_words / 36).min(1 << 17));
            Box::new(SessionStore::new(kv, records, theta, 50, &kind.label()))
        }
        WorkloadKind::YcsbUpdate { theta } => {
            // Figure 4 needs a working set much larger than the shadow:
            // many records spread over many pages.
            let records = (heap_words / 80).clamp(10_000, 400_000);
            let kv = BTreeKv::new(PAddr::new(BASE), records / 2);
            Box::new(SessionStore::new(kv, records, theta, 100, &kind.label()))
        }
        WorkloadKind::Bank => Box::new(Bank::new(PAddr::new(BASE), 1024, 1000)),
    }
}

/// Runs one `(system, workload)` cell: build, load, call `after_load`
/// (systems snapshot their counters there so load traffic is excluded),
/// then measure.
pub fn run_on_with<S: TxnSystem>(
    sys: &S,
    kind: WorkloadKind,
    env: &BenchEnv,
    after_load: impl FnOnce(),
) -> RunStats {
    let cfg = RunConfig {
        threads: env.threads,
        seed: env.seed,
        latency: env.latency_mode,
    };
    let w = build_workload(kind, env);
    load_workload(sys, w.as_ref());
    after_load();
    run_fixed_ops(sys, w.as_ref(), cfg, env.ops_per_thread())
}

/// [`run_on_with`] without a post-load hook.
pub fn run_on<S: TxnSystem>(sys: &S, kind: WorkloadKind, env: &BenchEnv) -> RunStats {
    run_on_with(sys, kind, env, || {})
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper() {
        assert_eq!(WorkloadKind::TpccBTree.label(), "TPC-C (B+-tree)");
        assert_eq!(WorkloadKind::TatpHash.label(), "TATP (hash)");
        assert!(WorkloadKind::Ycsb { theta: 0.99 }.label().contains("0.99"));
    }

    #[test]
    fn nvml_compat_is_hash_only() {
        assert!(WorkloadKind::HashTable.nvml_compatible());
        assert!(WorkloadKind::TpccHash.nvml_compatible());
        assert!(!WorkloadKind::BTree.nvml_compatible());
        assert!(!WorkloadKind::TpccBTree.nvml_compatible());
    }
}
