//! One-shot bootstrap: `dude-bench import-legacy` converts the CSV
//! artifacts written by the pre-registry binaries (title-derived,
//! triple-underscore file names) into the canonical naming scheme and
//! wraps them into `BENCH_<spec>.json` records.
//!
//! The imported records carry `source: "imported-legacy-csv"` and tables
//! only (the old CSVs recorded no raw samples or metrics), so the report
//! renderer can regenerate `EXPERIMENTS.md` from the recorded full-tier
//! data without re-running hours of benchmarks. The five ablation CSVs
//! hold quick-tier data and are imported at quick tier.

use std::path::Path;

use crate::record::{EnvMeta, Record};
use crate::registry::find;
use crate::report::Table;
use crate::spec::{SpecTable, Tier};

/// One legacy CSV: old file name, owning spec, table slug, and the table
/// title the old binary printed (titles were not stored in the CSV).
struct LegacyCsv {
    old: &'static str,
    spec: &'static str,
    slug: &'static str,
    title: &'static str,
}

/// Tier of each imported spec: tables/figures were recorded at full tier,
/// the ablation CSVs at quick tier (their richer prose numbers in
/// `EXPERIMENTS.md` came from untracked full runs — flagged as stale
/// there).
fn spec_tier(spec: &str) -> Tier {
    if spec.starts_with("ablation_") {
        Tier::Quick
    } else {
        Tier::Full
    }
}

const LEGACY: &[LegacyCsv] = &[
    LegacyCsv {
        old: "table_2___throughput__1_gb_s__1000_cycles__4_threads_.csv",
        spec: "table2",
        slug: "main",
        title: "Table 2 — throughput (1 GB/s, 1000 cycles, 4 threads)",
    },
    LegacyCsv {
        old: "table_1___memory_writes__dudetm__1_gb_s__1000_cycles__4_threads_.csv",
        spec: "table1",
        slug: "main",
        title: "Table 1 — memory writes (DudeTM, 1 GB/s, 1000 cycles, 4 threads)",
    },
    LegacyCsv {
        old: "table_3___durable_latency__tpc_c__hash_.csv",
        spec: "table3",
        slug: "main",
        title: "Table 3 — durable latency, TPC-C (hash)",
    },
    LegacyCsv {
        old: "figure_2___hashtable_throughput_vs_nvm_bandwidth.csv",
        spec: "fig2",
        slug: "hashtable",
        title: "Figure 2 — HashTable throughput vs NVM bandwidth",
    },
    LegacyCsv {
        old: "figure_2___b__tree_throughput_vs_nvm_bandwidth.csv",
        spec: "fig2",
        slug: "btree",
        title: "Figure 2 — B+-tree throughput vs NVM bandwidth",
    },
    LegacyCsv {
        old: "figure_2___tpc_c__b__tree__throughput_vs_nvm_bandwidth.csv",
        spec: "fig2",
        slug: "tpcc_btree",
        title: "Figure 2 — TPC-C (B+-tree) throughput vs NVM bandwidth",
    },
    LegacyCsv {
        old: "figure_2___tpc_c__hash__throughput_vs_nvm_bandwidth.csv",
        spec: "fig2",
        slug: "tpcc_hash",
        title: "Figure 2 — TPC-C (hash) throughput vs NVM bandwidth",
    },
    LegacyCsv {
        old: "figure_2___tatp__b__tree__throughput_vs_nvm_bandwidth.csv",
        spec: "fig2",
        slug: "tatp_btree",
        title: "Figure 2 — TATP (B+-tree) throughput vs NVM bandwidth",
    },
    LegacyCsv {
        old: "figure_2___tatp__hash__throughput_vs_nvm_bandwidth.csv",
        spec: "fig2",
        slug: "tatp_hash",
        title: "Figure 2 — TATP (hash) throughput vs NVM bandwidth",
    },
    LegacyCsv {
        old: "figure_2__aux____dudetm_sync_at_3500_cycle_latency__1_gb_s.csv",
        spec: "fig2",
        slug: "aux_sync_latency",
        title: "Figure 2 (aux) — DudeTM-Sync at 3500-cycle latency, 1 GB/s",
    },
    LegacyCsv {
        old: "figure_3___log_optimization_vs_group_size__ycsb__zipf_0_99_.csv",
        spec: "fig3",
        slug: "main",
        title: "Figure 3 — log optimization vs group size (YCSB, zipf 0.99)",
    },
    LegacyCsv {
        old: "figure_4___swap_overhead__ycsb_update_only__zipf_0_99_.csv",
        spec: "fig4",
        slug: "zipf_0_99",
        title: "Figure 4 — swap overhead (YCSB update-only, zipf 0.99)",
    },
    LegacyCsv {
        old: "figure_4___swap_overhead__ycsb_update_only__zipf_1_07_.csv",
        spec: "fig4",
        slug: "zipf_1_07",
        title: "Figure 4 — swap overhead (YCSB update-only, zipf 1.07)",
    },
    LegacyCsv {
        old: "figure_5___tpc_c__b__tree__scaling__normalized_to_1_thread.csv",
        spec: "fig5",
        slug: "main",
        title: "Figure 5 — TPC-C (B+-tree) scaling, normalized to 1 thread",
    },
    LegacyCsv {
        old: "table_4___stm_vs_htm_engines__1_gb_s__1000_cycles__4_threads_.csv",
        spec: "table4",
        slug: "main",
        title: "Table 4 — STM vs HTM engines (1 GB/s, 1000 cycles, 4 threads)",
    },
    LegacyCsv {
        old: "ablation___volatile_log_buffer_size__tpc_c_hash__dudetm_.csv",
        spec: "ablation_vlog",
        slug: "main",
        title: "Ablation — volatile log buffer size (TPC-C hash, DudeTM)",
    },
    LegacyCsv {
        old: "ablation___persist_threads__tpc_c_hash__dudetm_.csv",
        spec: "ablation_persist_threads",
        slug: "main",
        title: "Ablation — persist threads (TPC-C hash, DudeTM)",
    },
    LegacyCsv {
        old: "ablation___reproduce_checkpoint_cadence__tpc_c_hash__dudetm_.csv",
        spec: "ablation_checkpoint_cadence",
        slug: "main",
        title: "Ablation — reproduce checkpoint cadence (TPC-C hash, DudeTM)",
    },
    LegacyCsv {
        old: "ablation___reproduce_shard_workers__write_heavy_drain__dudetm_inf_.csv",
        spec: "ablation_reproduce_shards",
        slug: "main",
        title: "Ablation — reproduce shard workers (write-heavy drain, DudeTM-Inf)",
    },
    LegacyCsv {
        old: "ablation___persist_flush_workers__write_heavy_drain__group_8__dudetm_inf__pcm_latency_.csv",
        spec: "ablation_flush_workers",
        slug: "main",
        title: "Ablation — persist flush workers (write-heavy drain, group=8, DudeTM-Inf, PCM latency)",
    },
    LegacyCsv {
        old: "endurance___line_wear_vs_log_combination__ycsb__zipf_0_99_.csv",
        spec: "endurance",
        slug: "main",
        title: "Endurance — line wear vs log combination (YCSB, zipf 0.99)",
    },
];

fn parse_csv(text: &str, title: &str) -> Option<Table> {
    let mut lines = text.lines();
    let headers: Vec<&str> = lines.next()?.split(',').collect();
    let mut table = Table::new(title, &headers);
    for line in lines {
        if line.trim().is_empty() {
            continue;
        }
        let row: Vec<String> = line.split(',').map(str::to_string).collect();
        if row.len() != table.headers.len() {
            return None;
        }
        table.push(row);
    }
    Some(table)
}

/// Runs the import against `dir`: renames each legacy CSV to its canonical
/// `<spec>__<slug>.csv` name (skipping ones already renamed) and writes one
/// `BENCH_<spec>.json` per spec from the CSV contents.
///
/// # Errors
///
/// A human-readable message when neither the legacy nor the canonical file
/// exists, or a CSV is malformed.
pub fn import_legacy(dir: &Path) -> Result<Vec<Record>, String> {
    let env = EnvMeta {
        os: "unknown".into(),
        arch: "unknown".into(),
        cpus: 0,
        git_sha: "unknown".into(),
        source: "imported-legacy-csv".into(),
    };
    let mut records: Vec<Record> = Vec::new();
    for item in LEGACY {
        let spec = find(item.spec).ok_or_else(|| format!("unknown spec {}", item.spec))?;
        let canonical = dir.join(format!("{}__{}.csv", item.spec, item.slug));
        let legacy = dir.join(item.old);
        if legacy.is_file() {
            std::fs::rename(&legacy, &canonical)
                .map_err(|e| format!("rename {}: {e}", legacy.display()))?;
            println!("[import] {} -> {}", item.old, canonical.display());
        }
        let text = std::fs::read_to_string(&canonical).map_err(|e| {
            format!(
                "{}: {e} (neither legacy nor canonical CSV found)",
                canonical.display()
            )
        })?;
        let table =
            parse_csv(&text, item.title).ok_or_else(|| format!("malformed CSV {}", item.old))?;
        let record = match records.iter_mut().find(|r| r.spec == item.spec) {
            Some(r) => r,
            None => {
                records.push(Record {
                    spec: spec.name.to_string(),
                    title: spec.title.to_string(),
                    paper_ref: spec.paper_ref.to_string(),
                    tier: spec_tier(spec.name),
                    deterministic: false,
                    seed: 42,
                    env: env.clone(),
                    metrics: vec![],
                    tables: vec![],
                    notes: vec![
                        "imported from pre-registry CSV artifacts; tables only (no raw \
                         samples or gated metrics were recorded)"
                            .to_string(),
                    ],
                });
                records.last_mut().expect("just pushed")
            }
        };
        record.tables.push(SpecTable {
            slug: item.slug.to_string(),
            table,
        });
    }
    for record in &records {
        crate::runner::write_record(record, dir);
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mapping_is_consistent_with_registry() {
        for item in LEGACY {
            let spec = find(item.spec).expect("spec exists");
            assert!(
                spec.tables.iter().any(|(s, _)| *s == item.slug),
                "{}: slug {} not declared",
                item.spec,
                item.slug
            );
        }
    }

    #[test]
    fn import_renames_and_builds_records() {
        let dir = std::env::temp_dir().join(format!("dude_bench_import_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        // Seed two legacy files; the rest are missing so the import fails on
        // them — test against a trimmed mapping by writing all files.
        for item in LEGACY {
            std::fs::write(dir.join(item.old), "h1,h2\na,1\nb,2\n").unwrap();
        }
        let records = import_legacy(&dir).expect("import works");
        assert!(dir.join("table2__main.csv").is_file());
        assert!(!dir.join(LEGACY[0].old).exists());
        assert!(dir.join("BENCH_fig2.json").is_file());
        let fig2 = records.iter().find(|r| r.spec == "fig2").unwrap();
        assert_eq!(fig2.tables.len(), 7);
        assert_eq!(fig2.env.source, "imported-legacy-csv");
        assert_eq!(fig2.tier, Tier::Full);
        let abl = records.iter().find(|r| r.spec == "ablation_vlog").unwrap();
        assert_eq!(abl.tier, Tier::Quick);
        // Idempotent: a second import reads the canonical names.
        import_legacy(&dir).expect("re-import works");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
