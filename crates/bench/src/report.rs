//! Table formatting: markdown to stdout, CSV to `bench_results/`.

use std::io::Write as _;
use std::path::Path;

/// A simple result table.
#[derive(Debug, Clone)]
pub struct Table {
    /// Table title (printed as a heading, used as the CSV file stem).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the column count differs from the header count.
    pub fn push(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.headers.len(), "column count mismatch");
        self.rows.push(row);
    }

    /// Renders the table body as github-flavored markdown (aligned pipe
    /// table, no title, trailing newline). This is the single formatting
    /// path shared by [`Table::print`] and the `dude-bench render`
    /// report generator, so stdout and `EXPERIMENTS.md` can never drift.
    #[must_use]
    pub fn to_markdown(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let fmt_row = |cells: &[String]| {
            let padded: Vec<String> = cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:w$}", c, w = widths[i]))
                .collect();
            format!("| {} |", padded.join(" | "))
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        out.push_str(&fmt_row(&sep));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Prints the table as github-flavored markdown.
    pub fn print(&self) {
        println!("\n### {}\n", self.title);
        print!("{}", self.to_markdown());
    }

    /// Serializes the table as CSV text (header line + rows).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }

    /// Writes the table as `<stem>.csv` under `dir` (created if missing).
    /// `dude-bench run` passes the canonical `<spec>__<slug>` stem.
    pub fn save_csv_as(&self, dir: &Path, stem: &str) {
        let path = dir.join(format!("{stem}.csv"));
        if std::fs::create_dir_all(dir).is_err() {
            return;
        }
        let Ok(mut f) = std::fs::File::create(&path) else {
            return;
        };
        let _ = f.write_all(self.to_csv().as_bytes());
        println!("[csv] {}", path.display());
    }
}

/// Formats a throughput in the paper's units (`M TPS` / `K TPS`).
pub fn fmt_tps(tps: f64) -> String {
    if tps >= 1e6 {
        format!("{:.2} MTPS", tps / 1e6)
    } else if tps >= 1e3 {
        format!("{:.1} KTPS", tps / 1e3)
    } else {
        format!("{tps:.0} TPS")
    }
}

/// Formats nanoseconds as microseconds, the unit of Table 3.
pub fn fmt_us(ns: u64) -> String {
    format!("{:.0} us", ns as f64 / 1000.0)
}

/// Formats a fraction as a percentage.
pub fn fmt_pct(frac: f64) -> String {
    format!("{:.1}%", frac * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_rows_and_print() {
        let mut t = Table::new("Demo", &["a", "b"]);
        t.push(vec!["1".into(), "2".into()]);
        assert_eq!(t.rows.len(), 1);
        t.print(); // must not panic
    }

    #[test]
    fn markdown_and_csv_rendering() {
        let mut t = Table::new("Demo", &["col", "x"]);
        t.push(vec!["1".into(), "22".into()]);
        assert_eq!(
            t.to_markdown(),
            "| col | x  |\n| --- | -- |\n| 1   | 22 |\n"
        );
        assert_eq!(t.to_csv(), "col,x\n1,22\n");
    }

    #[test]
    #[should_panic(expected = "column count")]
    fn mismatched_row_panics() {
        let mut t = Table::new("Demo", &["a", "b"]);
        t.push(vec!["1".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_tps(1_830_000.0), "1.83 MTPS");
        assert_eq!(fmt_tps(93_500.0), "93.5 KTPS");
        assert_eq!(fmt_tps(42.0), "42 TPS");
        assert_eq!(fmt_us(45_000), "45 us");
        assert_eq!(fmt_pct(0.245), "24.5%");
    }
}
