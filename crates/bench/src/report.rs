//! Table formatting: markdown to stdout, CSV to `bench_results/`.

use std::io::Write as _;
use std::path::Path;

/// A simple result table.
#[derive(Debug, Clone)]
pub struct Table {
    /// Table title (printed as a heading, used as the CSV file stem).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the column count differs from the header count.
    pub fn push(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.headers.len(), "column count mismatch");
        self.rows.push(row);
    }

    /// Prints the table as github-flavored markdown.
    pub fn print(&self) {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        println!("\n### {}\n", self.title);
        let fmt_row = |cells: &[String]| {
            let padded: Vec<String> = cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:w$}", c, w = widths[i]))
                .collect();
            format!("| {} |", padded.join(" | "))
        };
        println!("{}", fmt_row(&self.headers));
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        println!("{}", fmt_row(&sep));
        for row in &self.rows {
            println!("{}", fmt_row(row));
        }
        let _ = (0..ncols).count();
    }

    /// Writes the table as CSV under `dir` (created if missing), named
    /// from the title.
    pub fn save_csv(&self, dir: &str) {
        let stem: String = self
            .title
            .chars()
            .map(|c| if c.is_alphanumeric() { c } else { '_' })
            .collect();
        let path = Path::new(dir).join(format!("{}.csv", stem.to_lowercase()));
        if std::fs::create_dir_all(dir).is_err() {
            return;
        }
        let Ok(mut f) = std::fs::File::create(&path) else {
            return;
        };
        let _ = writeln!(f, "{}", self.headers.join(","));
        for row in &self.rows {
            let _ = writeln!(f, "{}", row.join(","));
        }
        println!("[csv] {}", path.display());
    }
}

/// Formats a throughput in the paper's units (`M TPS` / `K TPS`).
pub fn fmt_tps(tps: f64) -> String {
    if tps >= 1e6 {
        format!("{:.2} MTPS", tps / 1e6)
    } else if tps >= 1e3 {
        format!("{:.1} KTPS", tps / 1e3)
    } else {
        format!("{tps:.0} TPS")
    }
}

/// Formats nanoseconds as microseconds, the unit of Table 3.
pub fn fmt_us(ns: u64) -> String {
    format!("{:.0} us", ns as f64 / 1000.0)
}

/// Formats a fraction as a percentage.
pub fn fmt_pct(frac: f64) -> String {
    format!("{:.1}%", frac * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_rows_and_print() {
        let mut t = Table::new("Demo", &["a", "b"]);
        t.push(vec!["1".into(), "2".into()]);
        assert_eq!(t.rows.len(), 1);
        t.print(); // must not panic
    }

    #[test]
    #[should_panic(expected = "column count")]
    fn mismatched_row_panics() {
        let mut t = Table::new("Demo", &["a", "b"]);
        t.push(vec!["1".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_tps(1_830_000.0), "1.83 MTPS");
        assert_eq!(fmt_tps(93_500.0), "93.5 KTPS");
        assert_eq!(fmt_tps(42.0), "42 TPS");
        assert_eq!(fmt_us(45_000), "45 us");
        assert_eq!(fmt_pct(0.245), "24.5%");
    }
}
