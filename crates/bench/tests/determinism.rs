//! The docs-freshness determinism contract: two `--deterministic` runs of
//! the same spec with pinned seeds must render byte-identical
//! `EXPERIMENTS.md` blocks.
//!
//! Scope: `table1` at one thread with a small op count over the two cheap
//! workloads. At `threads=1` the seeded op stream is fully deterministic,
//! `load_workload` quiesces before the post-load stats snapshot, and
//! deterministic mode masks the wall-clock cells — so everything that
//! reaches the renderer is a pure function of (spec, seed, ops).

use std::collections::BTreeMap;

use dude_bench::record::Record;
use dude_bench::registry::find;
use dude_bench::render::render_doc;
use dude_bench::spec::SpecCtx;

fn run_once() -> Record {
    let spec = find("table1").expect("table1 registered");
    let ctx = SpecCtx {
        ops: Some(300),
        threads: Some(1),
        deterministic: true,
        workload_filter: Some(vec!["HashTable".into(), "B+-tree".into()]),
        ..SpecCtx::quick()
    };
    let out = (spec.runner)(&ctx);
    Record::from_output(
        spec,
        &ctx,
        out,
        dude_bench::record::EnvMeta {
            os: "test".into(),
            arch: "test".into(),
            cpus: 1,
            git_sha: "pinned".into(),
            source: "run".into(),
        },
    )
}

#[test]
fn two_pinned_seed_runs_render_byte_identical_blocks() {
    let doc = "# Results\n<!-- bench:table1 -->\nstale\n<!-- /bench:table1 -->\n";
    let mut renders = Vec::new();
    for _ in 0..2 {
        let record = run_once();
        // The JSON round-trip is part of the contract: render reads what
        // `dude-bench run` wrote to disk.
        let json = record.to_json().pretty();
        let reloaded = Record::from_json_text(&json).expect("record parses");
        let mut records = BTreeMap::new();
        records.insert(reloaded.spec.clone(), reloaded);
        let (out, n) = render_doc(doc, &records).expect("render succeeds");
        assert_eq!(n, 1);
        renders.push(out);
    }
    assert_eq!(
        renders[0], renders[1],
        "deterministic renders must be byte-identical"
    );
    // Sanity: both workloads made it into the block and walltime is masked.
    assert!(renders[0].contains("HashTable"));
    assert!(renders[0].contains("B+-tree"));
    assert!(renders[0].contains("| -"));
    assert!(!renders[0].contains("stale"));
}

#[test]
fn deterministic_records_are_byte_identical_json() {
    let a = run_once().to_json().pretty();
    let b = run_once().to_json().pretty();
    assert_eq!(
        a, b,
        "BENCH_table1.json must be byte-stable under pinned seeds"
    );
}
