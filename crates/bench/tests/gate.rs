//! Regression-gate semantics: tolerance boundaries, typed errors, and
//! walltime opt-in for `dude-bench diff`.

use dude_bench::diff::{diff_records, parse_tolerance, DiffError};
use dude_bench::record::{EnvMeta, Record};
use dude_bench::spec::{Better, Metric, Tier};

fn env() -> EnvMeta {
    EnvMeta {
        os: "linux".into(),
        arch: "x86_64".into(),
        cpus: 4,
        git_sha: "abc123".into(),
        source: "run".into(),
    }
}

fn metric(name: &str, value: f64, gated: bool, better: Better, walltime: bool) -> Metric {
    Metric {
        name: name.into(),
        unit: "tps",
        value,
        samples: vec![value],
        gated,
        better,
        walltime,
    }
}

fn record(spec: &str, tier: Tier, metrics: Vec<Metric>) -> Record {
    Record {
        spec: spec.into(),
        title: spec.into(),
        paper_ref: "test".into(),
        tier,
        deterministic: false,
        seed: 42,
        env: env(),
        metrics,
        tables: vec![],
        notes: vec![],
    }
}

#[test]
fn exactly_at_tolerance_boundary_passes() {
    // Baseline 100, Higher-is-better, 15% tolerance: 85.0 is ON the
    // boundary and must pass; anything strictly below fails.
    let base = vec![record(
        "s",
        Tier::Quick,
        vec![metric("m", 100.0, true, Better::Higher, false)],
    )];
    let at = vec![record(
        "s",
        Tier::Quick,
        vec![metric("m", 85.0, true, Better::Higher, false)],
    )];
    let report = diff_records(&base, &at, 0.15, false).unwrap();
    assert!(report.pass(), "value exactly at the boundary must pass");
    assert_eq!(report.checked, 1);

    let below = vec![record(
        "s",
        Tier::Quick,
        vec![metric("m", 84.9, true, Better::Higher, false)],
    )];
    let report = diff_records(&base, &below, 0.15, false).unwrap();
    assert!(!report.pass());
    assert_eq!(report.regressions.len(), 1);
    assert_eq!(report.regressions[0].metric, "m");
    assert!((report.regressions[0].change - (-0.151)).abs() < 1e-9);
}

#[test]
fn improvement_passes_and_is_reported() {
    let base = vec![record(
        "s",
        Tier::Quick,
        vec![metric("m", 100.0, true, Better::Higher, false)],
    )];
    let cur = vec![record(
        "s",
        Tier::Quick,
        vec![metric("m", 200.0, true, Better::Higher, false)],
    )];
    let report = diff_records(&base, &cur, 0.15, false).unwrap();
    assert!(report.pass(), "improvements never fail the gate");
    assert_eq!(report.improvements.len(), 1);
    assert_eq!(report.improvements[0].current, 200.0);
}

#[test]
fn two_sided_metrics_fail_in_both_directions() {
    let base = vec![record(
        "s",
        Tier::Quick,
        vec![metric("wtx", 10.0, true, Better::TwoSided, false)],
    )];
    for drifted in [8.0, 12.0] {
        let cur = vec![record(
            "s",
            Tier::Quick,
            vec![metric("wtx", drifted, true, Better::TwoSided, false)],
        )];
        let report = diff_records(&base, &cur, 0.15, false).unwrap();
        assert!(!report.pass(), "{drifted} should fail two-sided at 15%");
    }
    let ok = vec![record(
        "s",
        Tier::Quick,
        vec![metric("wtx", 10.5, true, Better::TwoSided, false)],
    )];
    assert!(diff_records(&base, &ok, 0.15, false).unwrap().pass());
}

#[test]
fn missing_spec_is_a_typed_error() {
    let base = vec![record("gone", Tier::Quick, vec![])];
    let err = diff_records(&base, &[], 0.15, false).unwrap_err();
    assert_eq!(
        err,
        DiffError::MissingSpec {
            spec: "gone".into()
        }
    );
    // And it is an error, not a regression: distinct from a failing report.
    assert!(err.to_string().contains("gone"));
}

#[test]
fn environment_mismatch_is_a_typed_error() {
    // Tier mismatch: a quick current run cannot gate against a full
    // baseline.
    let base = vec![record(
        "s",
        Tier::Full,
        vec![metric("m", 100.0, true, Better::Higher, false)],
    )];
    let cur = vec![record(
        "s",
        Tier::Quick,
        vec![metric("m", 100.0, true, Better::Higher, false)],
    )];
    match diff_records(&base, &cur, 0.15, false).unwrap_err() {
        DiffError::EnvMismatch {
            spec,
            field,
            baseline,
            current,
        } => {
            assert_eq!(spec, "s");
            assert_eq!(field, "tier");
            assert_eq!(baseline, "full");
            assert_eq!(current, "quick");
        }
        other => panic!("expected EnvMismatch, got {other:?}"),
    }

    // Unit mismatch on a gated metric is also an environment mismatch.
    let base = vec![record(
        "s",
        Tier::Quick,
        vec![metric("m", 100.0, true, Better::Higher, false)],
    )];
    let mut bad_unit = metric("m", 100.0, true, Better::Higher, false);
    bad_unit.unit = "us";
    let cur = vec![record("s", Tier::Quick, vec![bad_unit])];
    assert!(matches!(
        diff_records(&base, &cur, 0.15, false).unwrap_err(),
        DiffError::EnvMismatch { .. }
    ));
}

#[test]
fn missing_metric_is_a_typed_error_distinct_from_missing_spec() {
    let base = vec![record(
        "s",
        Tier::Quick,
        vec![metric("m", 100.0, true, Better::Higher, false)],
    )];
    let cur = vec![record("s", Tier::Quick, vec![])];
    let err = diff_records(&base, &cur, 0.15, false).unwrap_err();
    assert_eq!(
        err,
        DiffError::MissingMetric {
            spec: "s".into(),
            metric: "m".into()
        }
    );
}

#[test]
fn walltime_metrics_gate_only_on_opt_in() {
    let base = vec![record(
        "s",
        Tier::Quick,
        vec![
            metric("tps", 100.0, false, Better::Higher, true),
            metric("wtx", 10.0, true, Better::TwoSided, false),
        ],
    )];
    let cur = vec![record(
        "s",
        Tier::Quick,
        vec![
            metric("tps", 10.0, false, Better::Higher, true), // huge walltime drop
            metric("wtx", 10.0, true, Better::TwoSided, false),
        ],
    )];
    let without = diff_records(&base, &cur, 0.15, false).unwrap();
    assert!(without.pass(), "walltime excluded by default");
    assert_eq!(without.checked, 1);
    let with = diff_records(&base, &cur, 0.15, true).unwrap();
    assert!(!with.pass(), "walltime gated with --include-walltime");
    assert_eq!(with.checked, 2);
}

#[test]
fn tolerance_accepts_percent_and_fraction() {
    assert_eq!(parse_tolerance("15%").unwrap(), 0.15);
    assert_eq!(parse_tolerance("0.15").unwrap(), 0.15);
    assert!(matches!(
        parse_tolerance("banana").unwrap_err(),
        DiffError::BadTolerance(_)
    ));
}
