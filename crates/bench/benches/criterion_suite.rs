//! Criterion micro-benchmarks over the paper's code paths.
//!
//! These are *not* the paper-figure generators (see `src/bin/`); they are
//! statistically rigorous per-transaction measurements that `cargo bench`
//! can run quickly:
//!
//! * one insert transaction on each system (the Figure 2 / Table 2 cost
//!   structure at per-transaction granularity);
//! * the log-combination + compression path (Figure 3's inner loop);
//! * the STM vs HTM engines on the same workload (Table 4).

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use dude_baselines::{BaselineConfig, Mnemosyne, NvmlLike, VolatileStm};
use dude_nvm::{Nvm, NvmConfig, TimingConfig};
use dude_txapi::{PAddr, TxnSystem, TxnThread};
use dude_workloads::hashtable::HashTable;
use dude_workloads::rng::Rng;
use dudetm::{DudeTm, DudeTmConfig, DurabilityMode};

const HEAP: u64 = 16 << 20;
const DEVICE: u64 = 64 << 20;

fn timing() -> TimingConfig {
    TimingConfig::paper_default() // 1 GB/s, 1000 cycles
}

fn bench_insert_per_system(c: &mut Criterion) {
    let mut group = c.benchmark_group("hash_insert_txn");
    let table = HashTable::new(PAddr::new(64), 1 << 16);
    let key_space = 40_000u64;

    {
        let sys = VolatileStm::new(HEAP);
        let mut t = sys.register_thread();
        let mut rng = Rng::new(1);
        group.bench_function("volatile_stm", |b| {
            b.iter(|| {
                let k = rng.below(key_space);
                t.run(&mut |tx| table.insert(tx, k, k)).expect_committed()
            })
        });
    }
    {
        let nvm = Arc::new(Nvm::new(NvmConfig::for_benchmark(DEVICE, timing())));
        let sys = DudeTm::create_stm(
            nvm,
            DudeTmConfig {
                max_threads: 4,
                ..DudeTmConfig::small(HEAP)
            },
        );
        let mut t = sys.register_thread();
        let mut rng = Rng::new(1);
        group.bench_function("dudetm_async", |b| {
            b.iter(|| {
                let k = rng.below(key_space);
                t.run(&mut |tx| table.insert(tx, k, k)).expect_committed()
            })
        });
        drop(t);
        sys.quiesce();
    }
    {
        let nvm = Arc::new(Nvm::new(NvmConfig::for_benchmark(DEVICE, timing())));
        let sys = DudeTm::create_stm(
            nvm,
            DudeTmConfig {
                max_threads: 4,
                ..DudeTmConfig::small(HEAP)
            }
            .with_durability(DurabilityMode::Sync),
        );
        let mut t = sys.register_thread();
        let mut rng = Rng::new(1);
        group.bench_function("dudetm_sync", |b| {
            b.iter(|| {
                let k = rng.below(key_space);
                t.run(&mut |tx| table.insert(tx, k, k)).expect_committed()
            })
        });
        drop(t);
        sys.quiesce();
    }
    {
        let nvm = Arc::new(Nvm::new(NvmConfig::for_benchmark(DEVICE, timing())));
        let sys = Mnemosyne::create(nvm, BaselineConfig::small(HEAP));
        let mut t = sys.register_thread();
        let mut rng = Rng::new(1);
        group.bench_function("mnemosyne", |b| {
            b.iter(|| {
                let k = rng.below(key_space);
                t.run(&mut |tx| table.insert(tx, k, k)).expect_committed()
            })
        });
    }
    {
        let nvm = Arc::new(Nvm::new(NvmConfig::for_benchmark(DEVICE, timing())));
        let sys = NvmlLike::create(nvm, BaselineConfig::small(HEAP));
        let mut t = sys.register_thread();
        let mut rng = Rng::new(1);
        group.bench_function("nvml", |b| {
            b.iter(|| {
                let k = rng.below(key_space);
                t.run(&mut |tx| table.insert(tx, k, k)).expect_committed()
            })
        });
    }
    group.finish();
}

fn bench_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_counter_txn");
    {
        let sys = VolatileStm::new(HEAP);
        let mut t = sys.register_thread();
        group.bench_function("stm", |b| {
            b.iter(|| {
                t.run(&mut |tx| {
                    let v = tx.read_word(PAddr::new(64))?;
                    tx.write_word(PAddr::new(64), v + 1)
                })
                .expect_committed()
            })
        });
    }
    {
        let sys = dude_baselines::VolatileHtm::new(HEAP);
        let mut t = sys.register_thread();
        group.bench_function("htm", |b| {
            b.iter(|| {
                t.run(&mut |tx| {
                    let v = tx.read_word(PAddr::new(64))?;
                    tx.write_word(PAddr::new(64), v + 1)
                })
                .expect_committed()
            })
        });
    }
    group.finish();
}

fn bench_log_compression(c: &mut Criterion) {
    // A combined group of zipfian writes, as the Persist step sees it.
    let zipf = dude_workloads::rng::Zipf::new(10_000, 0.99);
    let mut rng = Rng::new(3);
    let payload: Vec<u8> = (0..4096)
        .flat_map(|_| {
            let addr = zipf.sample(&mut rng) * 8;
            let val = rng.below(1000);
            let mut bytes = addr.to_le_bytes().to_vec();
            bytes.extend_from_slice(&val.to_le_bytes());
            bytes
        })
        .collect();
    let mut group = c.benchmark_group("log_compression");
    group.bench_function("compress_64k_group", |b| {
        b.iter(|| dude_compress::compress(&payload))
    });
    let packed = dude_compress::compress(&payload);
    group.bench_function("decompress_64k_group", |b| {
        b.iter(|| dude_compress::decompress(&packed).unwrap())
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_insert_per_system, bench_engines, bench_log_compression
}
criterion_main!(benches);
