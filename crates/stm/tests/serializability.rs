//! Commit-timestamp serializability: the invariant DudeTM's Reproduce step
//! rests on.
//!
//! DudeTM replays redo logs in commit-timestamp order (§3.2, §3.4). That is
//! only correct if the STM's commit timestamps are a valid serialization
//! order: replaying every committed transaction's writes, sorted by tid,
//! must reconstruct exactly the memory state the concurrent execution
//! produced. This test runs many random concurrent transactions, captures
//! each commit's write set through the hook interface (precisely what
//! DudeTM's `dtmWrite`/`dtmEnd` do), and checks the replay.

use std::sync::Arc;

use dude_stm::{Stm, StmConfig, TxHooks, VecMemory, WordMemory};
use parking_lot::Mutex;

/// Captures (tid, writes) for committed transactions, like DudeTM's
/// volatile redo log.
#[derive(Default)]
struct CaptureLog {
    staged: Vec<(u64, u64)>,
    committed: Vec<(u64, Vec<(u64, u64)>)>,
}

impl TxHooks for CaptureLog {
    fn on_write(&mut self, addr: u64, val: u64) {
        self.staged.push((addr, val));
    }
    fn on_abort(&mut self, _wasted: Option<u64>) {
        self.staged.clear();
    }
    fn on_commit(&mut self, tid: Option<u64>) {
        let writes = std::mem::take(&mut self.staged);
        if let Some(tid) = tid {
            self.committed.push((tid, writes));
        }
    }
}

fn run_serializability_round(seed: u64, threads: u64, txns_per_thread: u64, mode_wb: bool) {
    const WORDS: u64 = 64;
    let stm = Arc::new(Stm::new(StmConfig::tiny())); // tiny: force stripe collisions
    let mem = Arc::new(VecMemory::new(WORDS * 8));
    let logs = Arc::new(Mutex::new(Vec::new()));

    std::thread::scope(|s| {
        for t in 0..threads {
            let stm = Arc::clone(&stm);
            let mem = Arc::clone(&mem);
            let logs = Arc::clone(&logs);
            s.spawn(move || {
                let mut th = stm.register();
                let mut hooks = CaptureLog::default();
                let mut x = seed ^ (t + 1).wrapping_mul(0xABCD_EF01);
                for i in 0..txns_per_thread {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let a = (x >> 30) % WORDS * 8;
                    let b = (x >> 12) % WORDS * 8;
                    let marker = (t << 32) | i;
                    if mode_wb {
                        th.run_wb(
                            &*mem,
                            &mut hooks,
                            |_, _| {},
                            |tx| {
                                // Value depends on reads: replay order matters.
                                let va = tx.read(a)?;
                                tx.write(b, va.wrapping_add(marker))?;
                                tx.write(a, va.wrapping_add(1))
                            },
                        );
                    } else {
                        th.run(&*mem, &mut hooks, |tx| {
                            let va = tx.read(a)?;
                            tx.write(b, va.wrapping_add(marker))?;
                            tx.write(a, va.wrapping_add(1))
                        });
                    }
                }
                logs.lock().append(&mut hooks.committed);
            });
        }
    });

    // Replay by tid order into a fresh model.
    let mut records = Arc::try_unwrap(logs).expect("sole owner").into_inner();
    records.sort_by_key(|&(tid, _)| tid);
    // Tids must be unique and dense over committed + wasted; committed-only
    // must at least be strictly increasing after sort.
    for w in records.windows(2) {
        assert!(w[0].0 < w[1].0, "duplicate tid {}", w[0].0);
    }
    let mut model = vec![0u64; WORDS as usize];
    for (_, writes) in &records {
        for &(addr, val) in writes {
            model[(addr / 8) as usize] = val;
        }
    }
    for i in 0..WORDS {
        assert_eq!(
            mem.load(i * 8),
            model[i as usize],
            "word {i} differs from tid-ordered replay (seed {seed})"
        );
    }
}

#[test]
fn write_through_commit_order_is_a_serialization_order() {
    for seed in 0..8 {
        run_serializability_round(seed, 4, 300, false);
    }
}

#[test]
fn write_back_commit_order_is_a_serialization_order() {
    for seed in 0..8 {
        run_serializability_round(seed * 11 + 5, 4, 300, true);
    }
}

#[test]
fn single_thread_replay_is_exact() {
    run_serializability_round(999, 1, 2000, false);
}
