//! The STM instance and per-thread retry loops.

use std::sync::atomic::{AtomicU64, Ordering};

use dude_txapi::{CommitInfo, TxAbort, TxId, TxResult, TxnOutcome};

use crate::clock::GlobalClock;
use crate::locks::{LockTable, StmConfig};
use crate::memory::WordMemory;
use crate::wb::WriteBackTx;
use crate::wt::StmTx;
use crate::TxHooks;

/// Aggregate STM statistics (relaxed counters).
#[derive(Debug, Default)]
pub struct StmStats {
    commits: AtomicU64,
    read_only_commits: AtomicU64,
    conflicts: AtomicU64,
    user_aborts: AtomicU64,
    wasted_tids: AtomicU64,
}

/// Point-in-time copy of [`StmStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StmStatsSnapshot {
    /// Committed update transactions.
    pub commits: u64,
    /// Committed read-only transactions.
    pub read_only_commits: u64,
    /// Conflict-induced aborts (each triggers a retry).
    pub conflicts: u64,
    /// Application aborts (`dtmAbort`).
    pub user_aborts: u64,
    /// Commit timestamps consumed by failed commits.
    pub wasted_tids: u64,
}

impl StmStats {
    /// Takes a point-in-time copy.
    pub fn snapshot(&self) -> StmStatsSnapshot {
        StmStatsSnapshot {
            commits: self.commits.load(Ordering::Relaxed),
            read_only_commits: self.read_only_commits.load(Ordering::Relaxed),
            conflicts: self.conflicts.load(Ordering::Relaxed),
            user_aborts: self.user_aborts.load(Ordering::Relaxed),
            wasted_tids: self.wasted_tids.load(Ordering::Relaxed),
        }
    }
}

/// A TinySTM-class software transactional memory instance.
///
/// See the [crate docs](crate) for an overview and example.
#[derive(Debug)]
pub struct Stm {
    clock: GlobalClock,
    locks: LockTable,
    config: StmConfig,
    next_owner: AtomicU64,
    stats: StmStats,
}

impl Stm {
    /// Creates an STM instance with the given configuration.
    pub fn new(config: StmConfig) -> Self {
        Self::with_initial_clock(config, 0)
    }

    /// Creates an STM whose commit timestamps continue from `start` (used
    /// after recovery so transaction IDs stay globally unique).
    pub fn with_initial_clock(config: StmConfig, start: u64) -> Self {
        Stm {
            clock: GlobalClock::starting_at(start),
            locks: LockTable::new(config.lock_table_bits),
            config,
            next_owner: AtomicU64::new(1),
            stats: StmStats::default(),
        }
    }

    /// Registers the calling thread, returning its transaction executor.
    pub fn register(&self) -> StmThread<'_> {
        StmThread {
            stm: self,
            owner: self.next_owner.fetch_add(1, Ordering::Relaxed),
        }
    }

    /// The global version clock (DudeTM reads it for durable-ID queries).
    pub fn clock(&self) -> &GlobalClock {
        &self.clock
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> StmStatsSnapshot {
        self.stats.snapshot()
    }

    /// The configuration this instance was built with.
    pub fn config(&self) -> StmConfig {
        self.config
    }
}

/// Per-thread transaction executor.
#[derive(Debug)]
pub struct StmThread<'s> {
    stm: &'s Stm,
    owner: u64,
}

impl<'s> StmThread<'s> {
    /// This thread's unique owner ID in the lock table.
    pub fn owner(&self) -> u64 {
        self.owner
    }

    /// Runs `body` as a **write-through** transaction (DudeTM's mode),
    /// retrying on conflicts until it commits or user-aborts.
    ///
    /// Hook invocation order per attempt: `on_write` per successful write;
    /// then exactly one of `on_commit(tid)` or `on_abort(wasted)`.
    pub fn run<M, H, R>(
        &mut self,
        mem: &M,
        hooks: &mut H,
        mut body: impl FnMut(&mut StmTx<'_, M, H>) -> TxResult<R>,
    ) -> TxnOutcome<R>
    where
        M: WordMemory + ?Sized,
        H: TxHooks,
    {
        let mut retries = 0u32;
        loop {
            let mut tx = StmTx::begin(&self.stm.clock, &self.stm.locks, mem, hooks, self.owner);
            match body(&mut tx) {
                Ok(value) => {
                    let read_only = !tx.is_update();
                    match tx.commit() {
                        Ok(tid) => {
                            hooks.on_commit(tid);
                            self.count_commit(read_only);
                            return TxnOutcome::Committed {
                                value,
                                info: CommitInfo { tid, retries },
                            };
                        }
                        Err(_) => {
                            let wasted = tx.take_wasted();
                            tx.rollback();
                            hooks.on_abort(wasted);
                            self.count_conflict(wasted.is_some());
                            retries += 1;
                            self.backoff(retries);
                        }
                    }
                }
                Err(TxAbort::User) => {
                    tx.rollback();
                    hooks.on_abort(None);
                    self.stm.stats.user_aborts.fetch_add(1, Ordering::Relaxed);
                    return TxnOutcome::Aborted;
                }
                Err(TxAbort::Conflict) => {
                    tx.rollback();
                    hooks.on_abort(None);
                    self.count_conflict(false);
                    retries += 1;
                    self.backoff(retries);
                }
            }
        }
    }

    /// Runs `body` as a **write-back** transaction (Mnemosyne's mode).
    ///
    /// `pre_publish` runs once per *successful* commit, after the commit is
    /// certain but before buffered writes reach memory — the point where a
    /// redo-logging durable system persists its log.
    pub fn run_wb<M, H, R>(
        &mut self,
        mem: &M,
        hooks: &mut H,
        mut pre_publish: impl FnMut(&[(u64, u64)], TxId),
        mut body: impl FnMut(&mut WriteBackTx<'_, M, H>) -> TxResult<R>,
    ) -> TxnOutcome<R>
    where
        M: WordMemory + ?Sized,
        H: TxHooks,
    {
        let mut retries = 0u32;
        loop {
            let mut tx =
                WriteBackTx::begin(&self.stm.clock, &self.stm.locks, mem, hooks, self.owner);
            match body(&mut tx) {
                Ok(value) => {
                    let read_only = !tx.is_update();
                    match tx.commit_with(&mut pre_publish) {
                        Ok(tid) => {
                            hooks.on_commit(tid);
                            self.count_commit(read_only);
                            return TxnOutcome::Committed {
                                value,
                                info: CommitInfo { tid, retries },
                            };
                        }
                        Err(_) => {
                            let wasted = tx.take_wasted();
                            tx.rollback();
                            hooks.on_abort(wasted);
                            self.count_conflict(wasted.is_some());
                            retries += 1;
                            self.backoff(retries);
                        }
                    }
                }
                Err(TxAbort::User) => {
                    tx.rollback();
                    hooks.on_abort(None);
                    self.stm.stats.user_aborts.fetch_add(1, Ordering::Relaxed);
                    return TxnOutcome::Aborted;
                }
                Err(TxAbort::Conflict) => {
                    tx.rollback();
                    hooks.on_abort(None);
                    self.count_conflict(false);
                    retries += 1;
                    self.backoff(retries);
                }
            }
        }
    }

    fn count_commit(&self, read_only: bool) {
        if read_only {
            self.stm
                .stats
                .read_only_commits
                .fetch_add(1, Ordering::Relaxed);
        } else {
            self.stm.stats.commits.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn count_conflict(&self, wasted: bool) {
        self.stm.stats.conflicts.fetch_add(1, Ordering::Relaxed);
        if wasted {
            self.stm.stats.wasted_tids.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Bounded exponential spin, then yield — important on few-core hosts
    /// where the conflicting transaction needs the CPU to finish.
    fn backoff(&self, attempt: u32) {
        #[cfg(feature = "sim")]
        if dude_sim::on_sim_task() {
            // Under the virtual scheduler the conflicting transaction only
            // runs if this task parks — spinning would monopolize the
            // token. Both backoff branches therefore park as event
            // waiters (STM word locks are raw atomics, so the wake comes
            // from the poll interval, not a lock-release event).
            dude_sim::block(dude_sim::YieldKind::Backoff);
            return;
        }
        if attempt <= self.stm.config.spin_retries {
            for _ in 0..(1u32 << attempt.min(10)) {
                std::hint::spin_loop();
            }
        } else {
            std::thread::yield_now();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NoHooks, VecMemory};
    use std::sync::Arc;

    #[test]
    fn counter_increments_concurrently_conserve_count() {
        let stm = Arc::new(Stm::new(StmConfig::tiny()));
        let mem = Arc::new(VecMemory::new(64));
        let threads = 4;
        let per_thread = 500;
        let mut handles = Vec::new();
        for _ in 0..threads {
            let stm = Arc::clone(&stm);
            let mem = Arc::clone(&mem);
            handles.push(std::thread::spawn(move || {
                let mut t = stm.register();
                for _ in 0..per_thread {
                    t.run(&*mem, &mut NoHooks, |tx| {
                        let v = tx.read(0)?;
                        tx.write(0, v + 1)
                    })
                    .expect_committed();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(mem.load(0), threads * per_thread);
        let stats = stm.stats();
        assert_eq!(stats.commits, threads * per_thread);
    }

    #[test]
    fn bank_transfers_conserve_total() {
        let stm = Arc::new(Stm::new(StmConfig::default()));
        let mem = Arc::new(VecMemory::new(8 * 64));
        // 64 accounts, 100 units each.
        for i in 0..64 {
            mem.store(i * 8, 100);
        }
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let stm = Arc::clone(&stm);
            let mem = Arc::clone(&mem);
            handles.push(std::thread::spawn(move || {
                let mut th = stm.register();
                let mut seed = t + 1;
                for _ in 0..1000 {
                    seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let a = (seed >> 33) % 64;
                    let b = (seed >> 13) % 64;
                    if a == b {
                        continue;
                    }
                    th.run(&*mem, &mut NoHooks, |tx| {
                        let va = tx.read(a * 8)?;
                        if va == 0 {
                            return Err(TxAbort::User);
                        }
                        tx.write(a * 8, va - 1)?;
                        let vb = tx.read(b * 8)?;
                        tx.write(b * 8, vb + 1)
                    });
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let total: u64 = (0..64).map(|i| mem.load(i * 8)).sum();
        assert_eq!(total, 64 * 100);
    }

    #[test]
    fn user_abort_rolls_back_and_returns_aborted() {
        let stm = Stm::new(StmConfig::tiny());
        let mem = VecMemory::new(64);
        let mut t = stm.register();
        let out = t.run(&mem, &mut NoHooks, |tx| {
            tx.write(0, 99)?;
            Err::<(), _>(TxAbort::User)
        });
        assert_eq!(out, TxnOutcome::Aborted);
        assert_eq!(mem.load(0), 0);
        assert_eq!(stm.stats().user_aborts, 1);
    }

    #[test]
    fn hooks_observe_writes_and_commit() {
        #[derive(Default)]
        struct Rec {
            writes: Vec<(u64, u64)>,
            committed: Option<Option<TxId>>,
        }
        impl TxHooks for Rec {
            fn on_write(&mut self, addr: u64, val: u64) {
                self.writes.push((addr, val));
            }
            fn on_commit(&mut self, tid: Option<TxId>) {
                self.committed = Some(tid);
            }
        }
        let stm = Stm::new(StmConfig::tiny());
        let mem = VecMemory::new(64);
        let mut t = stm.register();
        let mut rec = Rec::default();
        t.run(&mem, &mut rec, |tx| {
            tx.write(0, 1)?;
            tx.write(8, 2)
        })
        .expect_committed();
        assert_eq!(rec.writes, vec![(0, 1), (8, 2)]);
        assert_eq!(rec.committed, Some(Some(1)));
    }

    #[test]
    fn hooks_observe_abort_of_user_aborted_tx() {
        #[derive(Default)]
        struct Rec {
            aborts: u32,
        }
        impl TxHooks for Rec {
            fn on_abort(&mut self, _wasted: Option<TxId>) {
                self.aborts += 1;
            }
        }
        let stm = Stm::new(StmConfig::tiny());
        let mem = VecMemory::new(64);
        let mut t = stm.register();
        let mut rec = Rec::default();
        let out = t.run(&mem, &mut rec, |tx| {
            tx.write(0, 1)?;
            Err::<(), _>(TxAbort::User)
        });
        assert_eq!(out, TxnOutcome::Aborted);
        assert_eq!(rec.aborts, 1);
    }

    #[test]
    fn write_back_counter_concurrent() {
        let stm = Arc::new(Stm::new(StmConfig::tiny()));
        let mem = Arc::new(VecMemory::new(64));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let stm = Arc::clone(&stm);
            let mem = Arc::clone(&mem);
            handles.push(std::thread::spawn(move || {
                let mut t = stm.register();
                for _ in 0..300 {
                    t.run_wb(
                        &*mem,
                        &mut NoHooks,
                        |_, _| {},
                        |tx| {
                            let v = tx.read(0)?;
                            tx.write(0, v + 1)
                        },
                    )
                    .expect_committed();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(mem.load(0), 4 * 300);
    }

    #[test]
    fn tids_are_unique_and_dense_across_modes() {
        let stm = Stm::new(StmConfig::tiny());
        let mem = VecMemory::new(64);
        let mut t = stm.register();
        let mut tids = Vec::new();
        for i in 0..5u64 {
            let out = t.run(&mem, &mut NoHooks, |tx| tx.write(8, i));
            tids.push(out.info().unwrap().tid.unwrap());
        }
        for i in 0..5u64 {
            let out = t.run_wb(&mem, &mut NoHooks, |_, _| {}, |tx| tx.write(16, i));
            tids.push(out.info().unwrap().tid.unwrap());
        }
        assert_eq!(tids, (1..=10).collect::<Vec<_>>());
    }

    #[test]
    fn read_only_txn_reports_no_tid() {
        let stm = Stm::new(StmConfig::tiny());
        let mem = VecMemory::new(64);
        let mut t = stm.register();
        let out = t.run(&mem, &mut NoHooks, |tx| tx.read(0));
        assert_eq!(out.info().unwrap().tid, None);
        assert_eq!(stm.stats().read_only_commits, 1);
    }
}
