//! A TinySTM-class software transactional memory.
//!
//! DudeTM's Perform step executes transactions with an *out-of-the-box* TM
//! (§3.1); the paper's implementation uses TinySTM [Felber et al.], a
//! word-based, time-based STM. This crate rebuilds that substrate:
//!
//! * a **global version clock** whose commit timestamps double as DudeTM's
//!   global transaction IDs (§3.2);
//! * a table of **striped versioned locks** (ownership records);
//! * **write-through** access (encounter-time locking with a volatile undo
//!   list, the mode DudeTM selects in §4.1 because it permits in-place
//!   update on shadow memory);
//! * **write-back** access (commit-time locking with a redo buffer — reads
//!   must look up the write set, the address-mapping cost the paper
//!   attributes to Mnemosyne-style redo logging);
//! * **timestamp extension** so a transaction whose snapshot is stale can
//!   revalidate instead of aborting.
//!
//! Transactions run over any [`WordMemory`] — a flat vector in tests, the
//! shadow DRAM mirror in DudeTM, or the NVM image itself in the baselines.
//! Conflicts are surfaced as [`TxAbort::Conflict`] through `Result`; the
//! [`StmThread::run`] / [`StmThread::run_wb`] retry loops re-execute the
//! body (the reproduction's safe-Rust equivalent of TinySTM's `longjmp`).
//!
//! # Example
//!
//! ```
//! use dude_stm::{NoHooks, Stm, StmConfig, VecMemory, WordMemory};
//!
//! let stm = Stm::new(StmConfig::default());
//! let mem = VecMemory::new(1024);
//! let mut thread = stm.register();
//! let outcome = thread.run(&mem, &mut NoHooks, |tx| {
//!     let v = tx.read(0)?;
//!     tx.write(0, v + 1)?;
//!     Ok(v)
//! });
//! assert!(outcome.is_committed());
//! assert_eq!(mem.load(0), 1);
//! ```

mod clock;
mod locks;
mod memory;
mod thread;
mod wb;
mod wt;

pub use clock::GlobalClock;
pub use locks::{LockTable, StmConfig};
pub use memory::{VecMemory, WordMemory};
pub use thread::{Stm, StmStats, StmThread};
pub use wb::WriteBackTx;
pub use wt::StmTx;

pub use dude_txapi::{TxAbort, TxId, TxnOutcome};

/// Observation hooks invoked by the STM at well-defined points.
///
/// DudeTM implements `dtmWrite`/`dtmEnd`/`dtmAbort` (Algorithm 2) purely in
/// terms of these callbacks, which is what lets the TM remain an independent,
/// swappable component.
pub trait TxHooks {
    /// A transactional write of `val` to byte address `addr` succeeded.
    /// Called in program order; DudeTM appends a redo-log entry here.
    fn on_write(&mut self, addr: u64, val: u64) {
        let _ = (addr, val);
    }

    /// The current attempt aborted and was rolled back.
    ///
    /// `wasted_tid` is `Some(tid)` when the attempt had already consumed a
    /// commit timestamp (validation failed after the clock increment); the
    /// ID sequence has a hole that DudeTM fills with an abort marker so the
    /// global durable ID stays computable (§3.2).
    fn on_abort(&mut self, wasted_tid: Option<TxId>) {
        let _ = wasted_tid;
    }

    /// The transaction committed. `tid` is `None` for read-only
    /// transactions (no clock increment, nothing to persist).
    fn on_commit(&mut self, tid: Option<TxId>) {
        let _ = tid;
    }
}

impl<H: TxHooks + ?Sized> TxHooks for &mut H {
    fn on_write(&mut self, addr: u64, val: u64) {
        (**self).on_write(addr, val)
    }

    fn on_abort(&mut self, wasted_tid: Option<TxId>) {
        (**self).on_abort(wasted_tid)
    }

    fn on_commit(&mut self, tid: Option<TxId>) {
        (**self).on_commit(tid)
    }
}

/// A [`TxHooks`] implementation that observes nothing.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoHooks;

impl TxHooks for NoHooks {}

/// Object-safe word-level transactional access.
///
/// Both this crate's transaction types and the emulated-HTM transaction
/// types implement `TmAccess`, which is what lets DudeTM treat the TM as an
/// out-of-the-box, swappable component (§3.1): the Perform step only ever
/// sees `&mut dyn TmAccess`.
pub trait TmAccess {
    /// Transactionally reads the word at byte address `addr`.
    ///
    /// # Errors
    ///
    /// [`TxAbort::Conflict`] on a TM conflict; propagate with `?`.
    fn tm_read(&mut self, addr: u64) -> dude_txapi::TxResult<u64>;

    /// Transactionally writes `val` to byte address `addr`.
    ///
    /// # Errors
    ///
    /// [`TxAbort::Conflict`] on a TM conflict; propagate with `?`.
    fn tm_write(&mut self, addr: u64, val: u64) -> dude_txapi::TxResult<()>;
}

impl<M: WordMemory + ?Sized, H: TxHooks> TmAccess for StmTx<'_, M, H> {
    fn tm_read(&mut self, addr: u64) -> dude_txapi::TxResult<u64> {
        self.read(addr)
    }

    fn tm_write(&mut self, addr: u64, val: u64) -> dude_txapi::TxResult<()> {
        self.write(addr, val)
    }
}

impl<M: WordMemory + ?Sized, H: TxHooks> TmAccess for WriteBackTx<'_, M, H> {
    fn tm_read(&mut self, addr: u64) -> dude_txapi::TxResult<u64> {
        self.read(addr)
    }

    fn tm_write(&mut self, addr: u64, val: u64) -> dude_txapi::TxResult<()> {
        self.write(addr, val)
    }
}
