//! Abstract word-addressable memory the STM executes over.

use std::sync::atomic::{AtomicU64, Ordering};

/// Word-addressable memory accessed by transactions.
///
/// Addresses are byte offsets and must be 8-byte aligned. Implementations
/// provide *raw* loads and stores; all concurrency control is the STM's
/// responsibility, so implementations only need individual word accesses to
/// be data-race free (e.g. relaxed atomics), not synchronized.
///
/// A `WordMemory` is used from a single thread per transaction but several
/// transactions on different threads target the same memory, hence the
/// `&self` signatures. Implementations that are shared across threads must
/// be `Sync`; per-transaction views (like DudeTM's paged shadow view, which
/// pins pages with interior mutability) need not be.
pub trait WordMemory {
    /// Raw load of the word at byte offset `addr`.
    fn load(&self, addr: u64) -> u64;

    /// Raw store of `val` at byte offset `addr`.
    fn store(&self, addr: u64, val: u64);
}

impl<M: WordMemory + ?Sized> WordMemory for &M {
    #[inline]
    fn load(&self, addr: u64) -> u64 {
        (**self).load(addr)
    }

    #[inline]
    fn store(&self, addr: u64, val: u64) {
        (**self).store(addr, val)
    }
}

/// A flat in-DRAM memory: the volatile substrate for tests and for the
/// Volatile-STM upper bound of the evaluation (§5.1).
#[derive(Debug)]
pub struct VecMemory {
    words: Box<[AtomicU64]>,
}

impl VecMemory {
    /// Creates a zero-filled memory of `bytes` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is not a positive multiple of 8.
    pub fn new(bytes: u64) -> Self {
        assert!(
            bytes > 0 && bytes.is_multiple_of(8),
            "size must be a multiple of 8"
        );
        VecMemory {
            words: (0..bytes / 8).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Size in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.words.len() as u64 * 8
    }

    #[inline]
    fn index(&self, addr: u64) -> usize {
        assert!(addr.is_multiple_of(8), "unaligned word access at {addr}");
        let idx = (addr / 8) as usize;
        assert!(
            idx < self.words.len(),
            "address {addr} out of bounds ({} bytes)",
            self.size_bytes()
        );
        idx
    }
}

impl WordMemory for VecMemory {
    #[inline]
    fn load(&self, addr: u64) -> u64 {
        self.words[self.index(addr)].load(Ordering::Relaxed)
    }

    #[inline]
    fn store(&self, addr: u64, val: u64) {
        self.words[self.index(addr)].store(val, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_memory_roundtrip() {
        let m = VecMemory::new(64);
        m.store(0, 1);
        m.store(56, 2);
        assert_eq!(m.load(0), 1);
        assert_eq!(m.load(56), 2);
        assert_eq!(m.size_bytes(), 64);
    }

    #[test]
    #[should_panic(expected = "unaligned")]
    fn unaligned_rejected() {
        VecMemory::new(64).load(4);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_rejected() {
        VecMemory::new(64).store(64, 1);
    }

    #[test]
    fn reference_forwarding() {
        let m = VecMemory::new(64);
        let r: &VecMemory = &m;
        r.store(8, 5);
        assert_eq!(WordMemory::load(&r, 8), 5);
    }
}
