//! Striped versioned locks (ownership records).
//!
//! Each transactional address hashes to one lock word in a fixed-size table,
//! TinySTM-style. A lock word is either
//!
//! * **unlocked**: `version << 1` — the commit timestamp of the last writer
//!   of any address in the stripe, or
//! * **locked**: `(owner << 1) | 1` — held by the thread with that owner ID
//!   while it writes (write-through) or publishes (write-back).

use std::sync::atomic::{AtomicU64, Ordering};

/// STM configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StmConfig {
    /// log2 of the number of lock stripes. The paper-scale default (2^20)
    /// keeps false conflicts rare for multi-hundred-MB heaps.
    pub lock_table_bits: u32,
    /// Conflict retries before the retry loop starts yielding the CPU to
    /// let the conflicting transaction finish (essential on few-core hosts).
    pub spin_retries: u32,
}

impl Default for StmConfig {
    fn default() -> Self {
        StmConfig {
            lock_table_bits: 20,
            spin_retries: 8,
        }
    }
}

impl StmConfig {
    /// A small lock table for unit tests (forces stripe collisions).
    pub fn tiny() -> Self {
        StmConfig {
            lock_table_bits: 4,
            spin_retries: 2,
        }
    }
}

/// The striped lock table.
#[derive(Debug)]
pub struct LockTable {
    words: Box<[AtomicU64]>,
    mask: u64,
}

impl LockTable {
    /// Creates a table with `2^bits` stripes, all unlocked at version 0.
    pub fn new(bits: u32) -> Self {
        assert!((1..=28).contains(&bits), "unreasonable lock table size");
        let n = 1usize << bits;
        LockTable {
            words: (0..n).map(|_| AtomicU64::new(0)).collect(),
            mask: (n - 1) as u64,
        }
    }

    /// Stripe index for a byte address (word-granular, Fibonacci hashing).
    #[inline]
    pub fn stripe_of(&self, addr: u64) -> usize {
        let word = addr >> 3;
        (word.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32 & self.mask) as usize
    }

    /// The lock word for a stripe index.
    #[inline]
    pub fn word(&self, stripe: usize) -> &AtomicU64 {
        &self.words[stripe]
    }

    /// Number of stripes.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Always `false`; tables have at least two stripes.
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// `true` if the lock word is held.
#[inline]
pub(crate) fn is_locked(word: u64) -> bool {
    word & 1 == 1
}

/// Version of an unlocked word.
#[inline]
pub(crate) fn version_of(word: u64) -> u64 {
    debug_assert!(!is_locked(word));
    word >> 1
}

/// Encodes an unlocked word carrying `version`.
#[inline]
pub(crate) fn versioned(version: u64) -> u64 {
    version << 1
}

/// Encodes a locked word held by `owner`.
#[inline]
pub(crate) fn locked_by(owner: u64) -> u64 {
    (owner << 1) | 1
}

/// Owner ID of a locked word.
#[inline]
pub(crate) fn owner_of(word: u64) -> u64 {
    debug_assert!(is_locked(word));
    word >> 1
}

/// Tries to acquire `lock`, transitioning `expected_unlocked → locked_by(owner)`.
#[inline]
pub(crate) fn try_lock(lock: &AtomicU64, expected_unlocked: u64, owner: u64) -> bool {
    lock.compare_exchange(
        expected_unlocked,
        locked_by(owner),
        Ordering::Acquire,
        Ordering::Relaxed,
    )
    .is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encoding_roundtrip() {
        assert!(!is_locked(versioned(7)));
        assert_eq!(version_of(versioned(7)), 7);
        assert!(is_locked(locked_by(3)));
        assert_eq!(owner_of(locked_by(3)), 3);
    }

    #[test]
    fn stripes_cover_table() {
        let t = LockTable::new(8);
        assert_eq!(t.len(), 256);
        for addr in (0..4096u64).step_by(8) {
            assert!(t.stripe_of(addr) < t.len());
        }
    }

    #[test]
    fn same_word_same_stripe() {
        let t = LockTable::new(8);
        assert_eq!(t.stripe_of(64), t.stripe_of(64));
        // Bytes within one word share a stripe.
        assert_eq!(t.stripe_of(64), t.stripe_of(71));
    }

    #[test]
    fn try_lock_transitions() {
        let t = LockTable::new(4);
        let w = t.word(0);
        assert!(try_lock(w, versioned(0), 5));
        assert!(is_locked(w.load(Ordering::Relaxed)));
        assert_eq!(owner_of(w.load(Ordering::Relaxed)), 5);
        // Second acquisition fails.
        assert!(!try_lock(w, versioned(0), 6));
        w.store(versioned(9), Ordering::Release);
        assert_eq!(version_of(w.load(Ordering::Relaxed)), 9);
    }

    #[test]
    fn hashing_spreads_adjacent_words() {
        let t = LockTable::new(10);
        let mut seen = std::collections::HashSet::new();
        for i in 0..64u64 {
            seen.insert(t.stripe_of(i * 8));
        }
        // At least half of 64 adjacent words land on distinct stripes.
        assert!(seen.len() > 32, "poor spread: {}", seen.len());
    }
}
