//! The global version clock.

use std::sync::atomic::{AtomicU64, Ordering};

use dude_txapi::TxId;

/// A monotonically increasing global clock.
///
/// Commit timestamps drawn from this clock are DudeTM's global transaction
/// IDs: unique, monotonic, and dense across *update* transactions (§3.2).
/// The paper observes that a single fetch-and-add clock is not the
/// bottleneck at current transaction rates; the same holds here.
#[derive(Debug, Default)]
pub struct GlobalClock {
    now: AtomicU64,
}

impl GlobalClock {
    /// Creates a clock starting at zero (no transaction has committed).
    pub fn new() -> Self {
        Self::starting_at(0)
    }

    /// Creates a clock whose next tick returns `start + 1` — used after
    /// recovery so new commit timestamps continue the persistent sequence.
    pub fn starting_at(start: u64) -> Self {
        GlobalClock {
            now: AtomicU64::new(start),
        }
    }

    /// Current clock value (the ID of the most recent update commit).
    #[inline]
    pub fn now(&self) -> u64 {
        self.now.load(Ordering::Acquire)
    }

    /// Draws the next commit timestamp. Each call returns a unique,
    /// strictly increasing, gap-free ID starting at 1.
    #[inline]
    pub fn tick(&self) -> TxId {
        self.now.fetch_add(1, Ordering::AcqRel) + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn starts_at_zero_and_ticks_densely() {
        let c = GlobalClock::new();
        assert_eq!(c.now(), 0);
        assert_eq!(c.tick(), 1);
        assert_eq!(c.tick(), 2);
        assert_eq!(c.now(), 2);
    }

    #[test]
    fn concurrent_ticks_are_unique_and_dense() {
        let c = Arc::new(GlobalClock::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                (0..1000).map(|_| c.tick()).collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        let expect: Vec<u64> = (1..=4000).collect();
        assert_eq!(all, expect);
    }
}
