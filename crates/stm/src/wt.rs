//! Write-through transactions (encounter-time locking + volatile undo).
//!
//! This is the access mode DudeTM selects (§4.1): writes lock their stripe
//! at encounter time and update memory **in place**, recording old values in
//! a volatile undo list. Reads of the latest value therefore need no address
//! mapping — the core advantage the decoupled design preserves. On abort the
//! undo list is replayed in reverse; because the memory being patched is
//! *volatile shadow memory*, this "undo logging" has no persist-ordering
//! cost (paper footnote 3).

use dude_txapi::{TxAbort, TxId, TxResult};

use crate::clock::GlobalClock;
use crate::locks::{is_locked, owner_of, try_lock, version_of, versioned, LockTable};
use crate::memory::WordMemory;
use crate::TxHooks;

#[derive(Debug, Clone, Copy)]
struct ReadEntry {
    stripe: usize,
    version: u64,
}

#[derive(Debug, Clone, Copy)]
struct LockedStripe {
    stripe: usize,
    /// Lock word before we acquired it (an unlocked, versioned word).
    prev: u64,
}

/// An in-flight write-through transaction.
///
/// Created by [`crate::StmThread::run`]; user code receives `&mut StmTx` and
/// calls [`StmTx::read`] / [`StmTx::write`], propagating conflicts with `?`.
#[derive(Debug)]
pub struct StmTx<'t, M: WordMemory + ?Sized, H: TxHooks> {
    clock: &'t GlobalClock,
    locks: &'t LockTable,
    mem: &'t M,
    hooks: &'t mut H,
    owner: u64,
    /// Snapshot timestamp (TL2/TinySTM "read version").
    rv: u64,
    read_set: Vec<ReadEntry>,
    locked: Vec<LockedStripe>,
    /// `(addr, old value)` in write order; replayed in reverse on abort.
    undo: Vec<(u64, u64)>,
    /// Commit timestamp consumed by a failed commit, if any.
    wasted: Option<TxId>,
}

impl<'t, M: WordMemory + ?Sized, H: TxHooks> StmTx<'t, M, H> {
    pub(crate) fn begin(
        clock: &'t GlobalClock,
        locks: &'t LockTable,
        mem: &'t M,
        hooks: &'t mut H,
        owner: u64,
    ) -> Self {
        let rv = clock.now();
        StmTx {
            clock,
            locks,
            mem,
            hooks,
            owner,
            rv,
            read_set: Vec::new(),
            locked: Vec::new(),
            undo: Vec::new(),
            wasted: None,
        }
    }

    /// Transactionally reads the word at byte address `addr`.
    ///
    /// # Errors
    ///
    /// [`TxAbort::Conflict`] if the stripe is locked by another transaction
    /// or the snapshot cannot be extended.
    pub fn read(&mut self, addr: u64) -> TxResult<u64> {
        let stripe = self.locks.stripe_of(addr);
        let lockw = self.locks.word(stripe);
        let mut spins = 0u32;
        loop {
            let l1 = lockw.load(std::sync::atomic::Ordering::Acquire);
            if is_locked(l1) {
                if owner_of(l1) == self.owner {
                    // In-place value written (or co-located) under my lock.
                    return Ok(self.mem.load(addr));
                }
                return Err(TxAbort::Conflict);
            }
            let val = self.mem.load(addr);
            let l2 = lockw.load(std::sync::atomic::Ordering::Acquire);
            if l2 != l1 {
                spins += 1;
                if spins > 64 {
                    return Err(TxAbort::Conflict);
                }
                continue;
            }
            let ver = version_of(l1);
            if ver > self.rv {
                self.extend()?;
                continue;
            }
            self.read_set.push(ReadEntry {
                stripe,
                version: ver,
            });
            return Ok(val);
        }
    }

    /// Transactionally writes `val` to byte address `addr`, in place.
    ///
    /// # Errors
    ///
    /// [`TxAbort::Conflict`] if the stripe is locked by another transaction
    /// or the snapshot cannot be extended.
    pub fn write(&mut self, addr: u64, val: u64) -> TxResult<()> {
        let stripe = self.locks.stripe_of(addr);
        let lockw = self.locks.word(stripe);
        loop {
            let l = lockw.load(std::sync::atomic::Ordering::Acquire);
            if is_locked(l) {
                if owner_of(l) == self.owner {
                    self.undo.push((addr, self.mem.load(addr)));
                    self.mem.store(addr, val);
                    self.hooks.on_write(addr, val);
                    return Ok(());
                }
                return Err(TxAbort::Conflict);
            }
            if version_of(l) > self.rv {
                self.extend()?;
                continue;
            }
            if try_lock(lockw, l, self.owner) {
                self.locked.push(LockedStripe { stripe, prev: l });
                self.undo.push((addr, self.mem.load(addr)));
                self.mem.store(addr, val);
                self.hooks.on_write(addr, val);
                return Ok(());
            }
            // CAS raced with another thread; re-inspect the lock word.
        }
    }

    /// Snapshot timestamp this transaction currently reads at.
    pub fn snapshot(&self) -> u64 {
        self.rv
    }

    /// `true` if this transaction has written anything.
    pub fn is_update(&self) -> bool {
        !self.undo.is_empty()
    }

    /// Attempts to advance `rv` to `clock.now()` after revalidating all
    /// reads (TinySTM timestamp extension).
    fn extend(&mut self) -> TxResult<()> {
        let new_rv = self.clock.now();
        self.validate()?;
        self.rv = new_rv;
        Ok(())
    }

    /// Checks that every read is still consistent: its stripe either holds
    /// the recorded version, or is locked by us and held that version when
    /// we locked it.
    fn validate(&self) -> TxResult<()> {
        for e in &self.read_set {
            let w = self
                .locks
                .word(e.stripe)
                .load(std::sync::atomic::Ordering::Acquire);
            let current = if is_locked(w) {
                if owner_of(w) != self.owner {
                    return Err(TxAbort::Conflict);
                }
                let prev = self
                    .locked
                    .iter()
                    .find(|ls| ls.stripe == e.stripe)
                    .expect("stripe locked by self must be in locked list")
                    .prev;
                version_of(prev)
            } else {
                version_of(w)
            };
            if current != e.version {
                return Err(TxAbort::Conflict);
            }
        }
        Ok(())
    }

    /// Commits the transaction. Returns the commit timestamp (`None` for
    /// read-only transactions).
    pub(crate) fn commit(&mut self) -> Result<Option<TxId>, TxAbort> {
        if self.locked.is_empty() {
            // Read-only: every read was validated against `rv` at read time.
            return Ok(None);
        }
        let wv = self.clock.tick();
        if wv != self.rv + 1 {
            if let Err(e) = self.validate() {
                // The timestamp is consumed; DudeTM will fill the ID hole
                // with an abort marker.
                self.wasted = Some(wv);
                return Err(e);
            }
        }
        for ls in &self.locked {
            self.locks
                .word(ls.stripe)
                .store(versioned(wv), std::sync::atomic::Ordering::Release);
        }
        self.locked.clear();
        self.undo.clear();
        Ok(Some(wv))
    }

    /// Rolls back in-place writes (reverse order) and releases stripes.
    pub(crate) fn rollback(&mut self) {
        for (addr, old) in self.undo.drain(..).rev() {
            self.mem.store(addr, old);
        }
        for ls in self.locked.drain(..) {
            self.locks
                .word(ls.stripe)
                .store(ls.prev, std::sync::atomic::Ordering::Release);
        }
    }

    pub(crate) fn take_wasted(&mut self) -> Option<TxId> {
        self.wasted.take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NoHooks, StmConfig};

    struct Fixture {
        clock: GlobalClock,
        locks: LockTable,
        mem: crate::VecMemory,
    }

    fn fixture() -> Fixture {
        Fixture {
            clock: GlobalClock::new(),
            locks: LockTable::new(StmConfig::tiny().lock_table_bits),
            mem: crate::VecMemory::new(1024),
        }
    }

    #[test]
    fn read_write_commit_in_place() {
        let f = fixture();
        let mut h = NoHooks;
        let mut tx = StmTx::begin(&f.clock, &f.locks, &f.mem, &mut h, 1);
        assert_eq!(tx.read(0).unwrap(), 0);
        tx.write(0, 5).unwrap();
        assert_eq!(tx.read(0).unwrap(), 5); // reads own in-place write
        let tid = tx.commit().unwrap();
        assert_eq!(tid, Some(1));
        assert_eq!(f.mem.load(0), 5);
    }

    #[test]
    fn read_only_commit_gets_no_tid() {
        let f = fixture();
        let mut h = NoHooks;
        let mut tx = StmTx::begin(&f.clock, &f.locks, &f.mem, &mut h, 1);
        tx.read(0).unwrap();
        assert!(!tx.is_update());
        assert_eq!(tx.commit().unwrap(), None);
        assert_eq!(f.clock.now(), 0);
    }

    #[test]
    fn rollback_restores_values_in_reverse() {
        let f = fixture();
        f.mem.store(0, 10);
        let mut h = NoHooks;
        let mut tx = StmTx::begin(&f.clock, &f.locks, &f.mem, &mut h, 1);
        tx.write(0, 11).unwrap();
        tx.write(0, 12).unwrap();
        assert_eq!(f.mem.load(0), 12);
        tx.rollback();
        assert_eq!(f.mem.load(0), 10);
        // Stripe is unlocked again at its old version.
        let w = f
            .locks
            .word(f.locks.stripe_of(0))
            .load(std::sync::atomic::Ordering::Relaxed);
        assert!(!is_locked(w));
    }

    #[test]
    fn conflicting_writer_aborts_reader() {
        let f = fixture();
        let mut h1 = NoHooks;
        let mut h2 = NoHooks;
        let mut t1 = StmTx::begin(&f.clock, &f.locks, &f.mem, &mut h1, 1);
        t1.write(0, 1).unwrap();
        let mut t2 = StmTx::begin(&f.clock, &f.locks, &f.mem, &mut h2, 2);
        assert_eq!(t2.read(0), Err(TxAbort::Conflict));
        t1.rollback();
        t2.rollback();
    }

    #[test]
    fn conflicting_writer_aborts_writer() {
        let f = fixture();
        let mut h1 = NoHooks;
        let mut h2 = NoHooks;
        let mut t1 = StmTx::begin(&f.clock, &f.locks, &f.mem, &mut h1, 1);
        t1.write(0, 1).unwrap();
        let mut t2 = StmTx::begin(&f.clock, &f.locks, &f.mem, &mut h2, 2);
        assert_eq!(t2.write(0, 2), Err(TxAbort::Conflict));
        t1.rollback();
        t2.rollback();
        assert_eq!(f.mem.load(0), 0);
    }

    #[test]
    fn stale_snapshot_extends_when_reads_unaffected() {
        let f = fixture();
        let mut h1 = NoHooks;
        // T1 begins at rv=0.
        let mut t1 = StmTx::begin(&f.clock, &f.locks, &f.mem, &mut h1, 1);
        // Another transaction commits to word 512 (different stripe for most
        // hashes; pick a word in a distinct stripe).
        let other_addr = (0..1024u64)
            .step_by(8)
            .find(|&a| f.locks.stripe_of(a) != f.locks.stripe_of(0))
            .unwrap();
        let mut h2 = NoHooks;
        let mut t2 = StmTx::begin(&f.clock, &f.locks, &f.mem, &mut h2, 2);
        t2.write(other_addr, 9).unwrap();
        t2.commit().unwrap();
        // T1 now reads a word whose stripe version (0) is fine, then writes
        // the *other* stripe whose version (1) exceeds rv=0 → extension.
        assert_eq!(t1.read(0).unwrap(), 0);
        t1.write(other_addr, 10).unwrap();
        assert!(t1.commit().unwrap().is_some());
        assert_eq!(f.mem.load(other_addr), 10);
    }

    #[test]
    fn validation_fails_if_read_stripe_changed_before_lock() {
        let f = fixture();
        let addr = 0u64;
        let mut h1 = NoHooks;
        let mut t1 = StmTx::begin(&f.clock, &f.locks, &f.mem, &mut h1, 1);
        assert_eq!(t1.read(addr).unwrap(), 0);
        // T2 commits a write to the same word.
        let mut h2 = NoHooks;
        let mut t2 = StmTx::begin(&f.clock, &f.locks, &f.mem, &mut h2, 2);
        t2.write(addr, 7).unwrap();
        t2.commit().unwrap();
        // T1 then writes the same word: version(1) > rv(0) forces an
        // extension, which must fail because the read is stale.
        assert_eq!(t1.write(addr, 8), Err(TxAbort::Conflict));
        t1.rollback();
        assert_eq!(f.mem.load(addr), 7);
    }

    #[test]
    fn wasted_tid_reported_on_commit_validation_failure() {
        let f = fixture();
        // Make stripes of addr_a and addr_b differ.
        let addr_a = 0u64;
        let addr_b = (8..1024u64)
            .step_by(8)
            .find(|&a| f.locks.stripe_of(a) != f.locks.stripe_of(addr_a))
            .unwrap();
        let mut h1 = NoHooks;
        let mut t1 = StmTx::begin(&f.clock, &f.locks, &f.mem, &mut h1, 1);
        assert_eq!(t1.read(addr_a).unwrap(), 0);
        t1.write(addr_b, 1).unwrap();
        // T2 invalidates T1's read and bumps the clock so wv != rv+1.
        let mut h2 = NoHooks;
        let mut t2 = StmTx::begin(&f.clock, &f.locks, &f.mem, &mut h2, 2);
        t2.write(addr_a, 9).unwrap();
        t2.commit().unwrap();
        assert!(t1.commit().is_err());
        let wasted = t1.take_wasted();
        assert_eq!(wasted, Some(2));
        t1.rollback();
        assert_eq!(f.mem.load(addr_b), 0);
    }

    #[test]
    fn false_sharing_same_stripe_is_handled() {
        // Two different words mapping to the same stripe: second write sees
        // "locked by me" and proceeds.
        let f = fixture();
        let addr_a = 0u64;
        let addr_b = (8..1024u64)
            .step_by(8)
            .find(|&a| f.locks.stripe_of(a) == f.locks.stripe_of(addr_a))
            .expect("tiny lock table must collide");
        let mut h = NoHooks;
        let mut tx = StmTx::begin(&f.clock, &f.locks, &f.mem, &mut h, 1);
        tx.write(addr_a, 1).unwrap();
        tx.write(addr_b, 2).unwrap();
        assert_eq!(tx.read(addr_b).unwrap(), 2);
        tx.commit().unwrap();
        assert_eq!(f.mem.load(addr_a), 1);
        assert_eq!(f.mem.load(addr_b), 2);
    }
}
