//! Write-back transactions (commit-time locking + redo buffer).
//!
//! This is TinySTM's write-back access scheme — the one Mnemosyne uses
//! (§5.2.2). Writes are buffered in a per-transaction write set; **reads
//! must first look the address up in that buffer**, which is precisely the
//! update-redirection / address-mapping overhead the paper's decoupled
//! design eliminates (§2.2). At commit, all written stripes are locked, the
//! read set is validated, and the buffered values are published.
//!
//! [`WriteBackTx::commit_with`] exposes a pre-publish hook: the
//! Mnemosyne-like baseline persists its NVM redo log there, after the
//! transaction is certain to commit but before any in-place update becomes
//! visible.

use std::collections::HashMap;
use std::sync::atomic::Ordering;

use dude_txapi::{TxAbort, TxId, TxResult};

use crate::clock::GlobalClock;
use crate::locks::{is_locked, owner_of, try_lock, version_of, versioned, LockTable};
use crate::memory::WordMemory;
use crate::TxHooks;

#[derive(Debug, Clone, Copy)]
struct ReadEntry {
    stripe: usize,
    version: u64,
}

#[derive(Debug, Clone, Copy)]
struct LockedStripe {
    stripe: usize,
    prev: u64,
}

/// An in-flight write-back transaction.
#[derive(Debug)]
pub struct WriteBackTx<'t, M: WordMemory + ?Sized, H: TxHooks> {
    clock: &'t GlobalClock,
    locks: &'t LockTable,
    mem: &'t M,
    hooks: &'t mut H,
    owner: u64,
    rv: u64,
    read_set: Vec<ReadEntry>,
    /// Buffered writes in program order (duplicates allowed; later wins).
    writes: Vec<(u64, u64)>,
    /// Address → index of latest buffered write (the mapping table whose
    /// lookup cost redo logging pays on every read).
    write_index: HashMap<u64, usize>,
    locked: Vec<LockedStripe>,
    wasted: Option<TxId>,
}

impl<'t, M: WordMemory + ?Sized, H: TxHooks> WriteBackTx<'t, M, H> {
    pub(crate) fn begin(
        clock: &'t GlobalClock,
        locks: &'t LockTable,
        mem: &'t M,
        hooks: &'t mut H,
        owner: u64,
    ) -> Self {
        let rv = clock.now();
        WriteBackTx {
            clock,
            locks,
            mem,
            hooks,
            owner,
            rv,
            read_set: Vec::new(),
            writes: Vec::new(),
            write_index: HashMap::new(),
            locked: Vec::new(),
            wasted: None,
        }
    }

    /// Transactionally reads the word at `addr`, redirecting to the write
    /// buffer if this transaction already wrote the address.
    ///
    /// # Errors
    ///
    /// [`TxAbort::Conflict`] on lock contention or a failed extension.
    pub fn read(&mut self, addr: u64) -> TxResult<u64> {
        if let Some(&idx) = self.write_index.get(&addr) {
            return Ok(self.writes[idx].1);
        }
        let stripe = self.locks.stripe_of(addr);
        let lockw = self.locks.word(stripe);
        let mut spins = 0u32;
        loop {
            let l1 = lockw.load(Ordering::Acquire);
            if is_locked(l1) {
                // Write-back never holds locks during execution, so any
                // lock here belongs to a committing peer.
                return Err(TxAbort::Conflict);
            }
            let val = self.mem.load(addr);
            let l2 = lockw.load(Ordering::Acquire);
            if l2 != l1 {
                spins += 1;
                if spins > 64 {
                    return Err(TxAbort::Conflict);
                }
                continue;
            }
            let ver = version_of(l1);
            if ver > self.rv {
                self.extend()?;
                continue;
            }
            self.read_set.push(ReadEntry {
                stripe,
                version: ver,
            });
            return Ok(val);
        }
    }

    /// Buffers a transactional write of `val` to `addr`.
    ///
    /// # Errors
    ///
    /// Never fails during execution (conflicts surface at commit), but keeps
    /// the fallible signature so workloads are mode-agnostic.
    pub fn write(&mut self, addr: u64, val: u64) -> TxResult<()> {
        let idx = self.writes.len();
        self.writes.push((addr, val));
        self.write_index.insert(addr, idx);
        self.hooks.on_write(addr, val);
        Ok(())
    }

    /// `true` if this transaction has buffered writes.
    pub fn is_update(&self) -> bool {
        !self.writes.is_empty()
    }

    /// Snapshot timestamp.
    pub fn snapshot(&self) -> u64 {
        self.rv
    }

    fn extend(&mut self) -> TxResult<()> {
        let new_rv = self.clock.now();
        self.validate()?;
        self.rv = new_rv;
        Ok(())
    }

    fn validate(&self) -> TxResult<()> {
        for e in &self.read_set {
            let w = self.locks.word(e.stripe).load(Ordering::Acquire);
            let current = if is_locked(w) {
                if owner_of(w) != self.owner {
                    return Err(TxAbort::Conflict);
                }
                let prev = self
                    .locked
                    .iter()
                    .find(|ls| ls.stripe == e.stripe)
                    .expect("stripe locked by self must be recorded")
                    .prev;
                version_of(prev)
            } else {
                version_of(w)
            };
            if current != e.version {
                return Err(TxAbort::Conflict);
            }
        }
        Ok(())
    }

    fn release_locks(&mut self, word_of: impl Fn(&LockedStripe) -> u64) {
        for ls in self.locked.drain(..) {
            self.locks
                .word(ls.stripe)
                .store(word_of(&ls), Ordering::Release);
        }
    }

    /// Commits, invoking `pre_publish(write_set, tid)` after the commit is
    /// certain but before buffered values are stored — where a redo-logging
    /// durable system persists its log.
    ///
    /// # Errors
    ///
    /// [`TxAbort::Conflict`] if stripe locking or validation fails.
    pub(crate) fn commit_with(
        &mut self,
        pre_publish: impl FnOnce(&[(u64, u64)], TxId),
    ) -> Result<Option<TxId>, TxAbort> {
        if self.writes.is_empty() {
            return Ok(None);
        }
        // Lock every written stripe (deduplicated); try-lock + abort avoids
        // deadlock without imposing a global order.
        let mut stripes: Vec<usize> = self
            .writes
            .iter()
            .map(|&(addr, _)| self.locks.stripe_of(addr))
            .collect();
        stripes.sort_unstable();
        stripes.dedup();
        for stripe in stripes {
            let lockw = self.locks.word(stripe);
            let l = lockw.load(Ordering::Acquire);
            if is_locked(l) || version_of(l) > self.rv || !try_lock(lockw, l, self.owner) {
                self.release_locks(|ls| ls.prev);
                return Err(TxAbort::Conflict);
            }
            self.locked.push(LockedStripe { stripe, prev: l });
        }
        let wv = self.clock.tick();
        if wv != self.rv + 1 {
            if let Err(e) = self.validate() {
                self.wasted = Some(wv);
                self.release_locks(|ls| ls.prev);
                return Err(e);
            }
        }
        pre_publish(&self.writes, wv);
        for &(addr, val) in &self.writes {
            self.mem.store(addr, val);
        }
        self.release_locks(|_| versioned(wv));
        Ok(Some(wv))
    }

    pub(crate) fn rollback(&mut self) {
        self.release_locks(|ls| ls.prev);
        self.writes.clear();
        self.write_index.clear();
    }

    pub(crate) fn take_wasted(&mut self) -> Option<TxId> {
        self.wasted.take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NoHooks, StmConfig, VecMemory};

    struct Fixture {
        clock: GlobalClock,
        locks: LockTable,
        mem: VecMemory,
    }

    fn fixture() -> Fixture {
        Fixture {
            clock: GlobalClock::new(),
            locks: LockTable::new(StmConfig::tiny().lock_table_bits),
            mem: VecMemory::new(1024),
        }
    }

    #[test]
    fn writes_invisible_until_commit() {
        let f = fixture();
        let mut h = NoHooks;
        let mut tx = WriteBackTx::begin(&f.clock, &f.locks, &f.mem, &mut h, 1);
        tx.write(0, 5).unwrap();
        assert_eq!(f.mem.load(0), 0, "write-back must not touch memory");
        assert_eq!(tx.read(0).unwrap(), 5, "read must redirect to write set");
        let tid = tx.commit_with(|_, _| {}).unwrap();
        assert_eq!(tid, Some(1));
        assert_eq!(f.mem.load(0), 5);
    }

    #[test]
    fn pre_publish_sees_write_set_before_memory_changes() {
        let f = fixture();
        let mut h = NoHooks;
        let mut tx = WriteBackTx::begin(&f.clock, &f.locks, &f.mem, &mut h, 1);
        tx.write(0, 5).unwrap();
        tx.write(8, 6).unwrap();
        let mut observed = Vec::new();
        tx.commit_with(|ws, tid| {
            assert_eq!(tid, 1);
            assert_eq!(f.mem.load(0), 0, "hook must run before publish");
            observed = ws.to_vec();
        })
        .unwrap();
        assert_eq!(observed, vec![(0, 5), (8, 6)]);
    }

    #[test]
    fn rollback_discards_buffer() {
        let f = fixture();
        let mut h = NoHooks;
        let mut tx = WriteBackTx::begin(&f.clock, &f.locks, &f.mem, &mut h, 1);
        tx.write(0, 5).unwrap();
        tx.rollback();
        assert_eq!(f.mem.load(0), 0);
    }

    #[test]
    fn duplicate_writes_last_wins() {
        let f = fixture();
        let mut h = NoHooks;
        let mut tx = WriteBackTx::begin(&f.clock, &f.locks, &f.mem, &mut h, 1);
        tx.write(0, 1).unwrap();
        tx.write(0, 2).unwrap();
        assert_eq!(tx.read(0).unwrap(), 2);
        tx.commit_with(|_, _| {}).unwrap();
        assert_eq!(f.mem.load(0), 2);
    }

    #[test]
    fn stale_read_aborts_at_commit() {
        let f = fixture();
        let mut h1 = NoHooks;
        let mut t1 = WriteBackTx::begin(&f.clock, &f.locks, &f.mem, &mut h1, 1);
        assert_eq!(t1.read(0).unwrap(), 0);
        t1.write(8, 1).unwrap();
        // Interfering committed write to the read location.
        let mut h2 = NoHooks;
        let mut t2 = WriteBackTx::begin(&f.clock, &f.locks, &f.mem, &mut h2, 2);
        t2.write(0, 9).unwrap();
        t2.commit_with(|_, _| {}).unwrap();
        let r = t1.commit_with(|_, _| panic!("must not publish"));
        assert_eq!(r, Err(TxAbort::Conflict));
        t1.rollback();
        assert_eq!(f.mem.load(8), 0);
    }

    #[test]
    fn read_only_tx_commits_without_tid() {
        let f = fixture();
        let mut h = NoHooks;
        let mut tx = WriteBackTx::begin(&f.clock, &f.locks, &f.mem, &mut h, 1);
        tx.read(0).unwrap();
        assert_eq!(tx.commit_with(|_, _| {}).unwrap(), None);
    }

    #[test]
    fn locked_stripe_blocks_concurrent_committer() {
        let f = fixture();
        // t1 locks stripe of addr 0 by entering commit… we emulate by
        // directly locking the stripe, then ensure t2 conflicts.
        let stripe = f.locks.stripe_of(0);
        assert!(try_lock(f.locks.word(stripe), 0, 7));
        let mut h = NoHooks;
        let mut t2 = WriteBackTx::begin(&f.clock, &f.locks, &f.mem, &mut h, 2);
        assert_eq!(t2.read(0), Err(TxAbort::Conflict));
        t2.rollback();
        let mut t3 = WriteBackTx::begin(&f.clock, &f.locks, &f.mem, &mut h, 3);
        t3.write(0, 4).unwrap();
        assert_eq!(t3.commit_with(|_, _| {}), Err(TxAbort::Conflict));
        t3.rollback();
    }
}
