//! TPC-C New-Order on four systems (a miniature Table 2).
//!
//! Runs the paper's write-intensive OLTP workload — with a hash index so
//! the static-transaction NVML-like baseline can participate — on DudeTM,
//! DudeTM-Sync, the Mnemosyne-like baseline, and the NVML-like baseline,
//! with the paper's NVM cost model enabled (1 GB/s, 1000-cycle latency).
//!
//! Run with: `cargo run --release --example tpcc`

use std::sync::Arc;

use dude_baselines::{BaselineConfig, Mnemosyne, NvmlLike};
use dude_nvm::{Nvm, NvmConfig, TimingConfig};
use dude_txapi::{PAddr, TxnSystem};
use dude_workloads::driver::{load_workload, run_fixed_ops, RunConfig, RunStats};
use dude_workloads::kv::HashKv;
use dude_workloads::tpcc::{Tpcc, TpccParams};
use dudetm::{DudeTm, DudeTmConfig, DurabilityMode};

const HEAP: u64 = 48 << 20;
const DEVICE: u64 = 96 << 20;
const OPS_PER_THREAD: u64 = 2_500;
const THREADS: usize = 4;

fn workload() -> Tpcc<HashKv> {
    let params = TpccParams {
        districts: 10,
        customers_per_district: 512,
        items: 10_000,
        max_orders: OPS_PER_THREAD * THREADS as u64 + 1024,
        partition_by_worker: false,
        payment_pct: 0,
    };
    Tpcc::new(
        HashKv::new(PAddr::new(64), 1 << 20),
        PAddr::new(20 << 20),
        params,
        "TPC-C (hash)",
    )
}

fn measure<S: TxnSystem>(sys: &S) -> RunStats {
    let w = workload();
    eprintln!("[{}] loading...", sys.name());
    let t0 = std::time::Instant::now();
    load_workload(sys, &w);
    eprintln!(
        "[{}] loaded in {:.1?}, measuring...",
        sys.name(),
        t0.elapsed()
    );
    run_fixed_ops(
        sys,
        &w,
        RunConfig {
            threads: THREADS,
            ..RunConfig::default()
        },
        OPS_PER_THREAD,
    )
}

fn nvm() -> Arc<Nvm> {
    Arc::new(Nvm::new(NvmConfig::for_benchmark(
        DEVICE,
        TimingConfig::paper_default(),
    )))
}

fn main() {
    let mut rows: Vec<(String, f64)> = Vec::new();

    for mode in [
        DurabilityMode::Async { buffer_txns: 16384 },
        DurabilityMode::Sync,
    ] {
        let config = DudeTmConfig {
            heap_bytes: HEAP,
            max_threads: THREADS + 2,
            ..DudeTmConfig::small(HEAP)
        }
        .with_durability(mode);
        if let Err(e) = config.try_validate() {
            eprintln!("tpcc: invalid configuration: {e}");
            std::process::exit(2);
        }
        let sys = DudeTm::create_stm(nvm(), config);
        let stats = measure(&sys);
        sys.quiesce();
        eprintln!(
            "[{}] done: {:.1} KTPS",
            TxnSystem::name(&sys),
            stats.throughput / 1e3
        );
        rows.push((TxnSystem::name(&sys).to_string(), stats.throughput));
    }
    {
        let sys = Mnemosyne::create(
            nvm(),
            BaselineConfig {
                heap_bytes: HEAP,
                max_threads: THREADS + 2,
                log_bytes_per_thread: 4 << 20,
            },
        );
        let stats = measure(&sys);
        rows.push((sys.name().to_string(), stats.throughput));
    }
    {
        let sys = NvmlLike::create(
            nvm(),
            BaselineConfig {
                heap_bytes: HEAP,
                max_threads: THREADS + 2,
                log_bytes_per_thread: 4 << 20,
            },
        );
        let stats = measure(&sys);
        rows.push((sys.name().to_string(), stats.throughput));
    }

    println!("\nTPC-C New-Order (hash index), {THREADS} threads, 1 GB/s NVM:");
    let dude_tps = rows[0].1;
    for (name, tps) in &rows {
        println!(
            "  {name:<12} {:>9.1} KTPS   ({:.2}x vs DudeTM)",
            tps / 1e3,
            tps / dude_tps
        );
    }
}
