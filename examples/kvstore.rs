//! A durable key-value store under a skewed YCSB-style workload (§5.4).
//!
//! Builds a B+-tree-indexed session store on DudeTM with cross-transaction
//! log combination and compression enabled, runs a Zipfian 50/50
//! read/update mix on several threads, and prints the NVM write traffic
//! saved by the Figure 3 optimizations.
//!
//! Run with: `cargo run --release --example kvstore`

use std::sync::Arc;

use dude_nvm::{Nvm, NvmConfig};
use dude_txapi::PAddr;
use dude_workloads::driver::{load_workload, run_fixed_ops, RunConfig};
use dude_workloads::kv::BTreeKv;
use dude_workloads::ycsb::SessionStore;
use dudetm::{DudeTm, DudeTmConfig};

fn main() {
    let nvm = Arc::new(Nvm::new(NvmConfig::for_testing(64 << 20)));
    let config = DudeTmConfig {
        max_threads: 8,
        ..DudeTmConfig::small(32 << 20)
    }
    // Group 100 consecutive transactions, combine their writes, compress.
    .with_grouping(100, true);
    // Surface configuration mistakes as a readable usage error (grouping,
    // for instance, requires an asynchronous pipeline) instead of a panic.
    if let Err(e) = config.try_validate() {
        eprintln!("kvstore: invalid configuration: {e}");
        std::process::exit(2);
    }
    let dude = DudeTm::create_stm(nvm, config);

    let store = SessionStore::new(
        BTreeKv::new(PAddr::new(64), 1 << 16),
        10_000, // records, as in the paper's Figure 3 setup
        0.99,   // Zipfian constant
        50,     // % updates
        "YCSB session store (B+-tree)",
    );

    println!("loading {} records...", store.records());
    load_workload(&dude, &store);

    println!("running 40k operations on 3 threads...");
    let stats = run_fixed_ops(
        &dude,
        &store,
        RunConfig {
            threads: 3,
            ..RunConfig::default()
        },
        40_000 / 3,
    );
    dude.quiesce();

    println!(
        "\n{}: {} committed, {:.0} TPS, {:.3} retries/txn",
        stats.workload,
        stats.committed,
        stats.throughput,
        stats.retry_rate()
    );
    let p = dude.pipeline_stats();
    println!(
        "log combination: {} entries in -> {} out ({:.1}% of NVM writes saved)",
        p.entries_before_combine,
        p.entries_after_combine,
        p.combine_savings() * 100.0
    );
    println!(
        "log compression: {} payload bytes -> {} stored ({:.1}% saved)",
        p.group_bytes_raw,
        p.group_bytes_stored,
        p.compression_savings() * 100.0
    );
    println!(
        "groups persisted: {}, transactions reproduced: {}",
        p.groups_persisted, p.txns_reproduced
    );
}
