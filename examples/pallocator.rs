//! The logged persistent allocator (`pmalloc`/`pfree`, §3.5).
//!
//! DudeTM's recovery needs to know which heap regions are allocated; the
//! paper keeps a separate log of allocation operations. This example runs
//! the allocator standalone: allocate, free, crash, and recover the live
//! set from the persistent allocation log.
//!
//! Run with: `cargo run --release --example pallocator`

use std::sync::Arc;

use dude_nvm::{Nvm, NvmConfig, PAllocator, Region};

fn main() {
    let nvm = Arc::new(Nvm::new(NvmConfig::for_testing(1 << 20)));
    let log = Region::new(0, 16 << 10);
    let heap = Region::new(16 << 10, (1 << 20) - (16 << 10));

    // Phase 1: allocate a few persistent objects.
    let keep;
    {
        let alloc = PAllocator::new(Arc::clone(&nvm), heap, log);
        let a = alloc.alloc(8).expect("alloc a");
        let b = alloc.alloc(32).expect("alloc b");
        keep = alloc.alloc(4).expect("alloc keep");
        println!("allocated a={a}, b={b}, keep={keep}");

        // Write something durable into `keep`.
        nvm.write_word(keep.offset(), 0xC0FFEE);
        nvm.persist(keep.offset(), 8);

        alloc.free(a).expect("free a");
        alloc.free(b).expect("free b");
        println!(
            "freed a and b; {} live allocation(s), {} free bytes",
            alloc.live_count(),
            alloc.free_bytes()
        );
    }

    // Power failure.
    nvm.crash();
    println!("-- crash --");

    // Phase 2: recover the allocator state from its log.
    let (alloc, recovered) = PAllocator::recover(Arc::clone(&nvm), heap, log);
    println!(
        "recovered {} live allocation(s) from {} log records",
        recovered.live.len(),
        recovered.records_scanned
    );
    for (addr, words) in &recovered.live {
        println!("  live: {addr} ({words} words)");
    }
    assert_eq!(recovered.live, vec![(keep, 4)]);
    assert_eq!(nvm.read_word(keep.offset()), 0xC0FFEE);

    // The recovered allocator will not hand out the live region again.
    let fresh = alloc.alloc(4).expect("alloc after recovery");
    assert_ne!(fresh, keep);
    println!("post-recovery allocation {fresh} avoids the live region: ok");
}
