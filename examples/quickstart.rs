//! Quickstart: durable bank transfers with DudeTM (paper Algorithm 1).
//!
//! Demonstrates the `dtm*` API end to end: create an emulated NVM device,
//! start the decoupled runtime, run transfer transactions, acknowledge
//! durability via the global durable ID, and watch the Reproduce step
//! apply everything to the persistent image.
//!
//! Run with: `cargo run --release --example quickstart`

use std::sync::Arc;

use dude_nvm::{Nvm, NvmConfig};
use dude_txapi::{PAddr, TxAbort, TxnSystem, TxnThread};
use dudetm::{DudeTm, DudeTmConfig};

const ACCOUNTS: u64 = 16;
const INITIAL: u64 = 100;

fn account(i: u64) -> PAddr {
    PAddr::from_word_index(8 + i)
}

fn main() {
    // An emulated 64 MiB persistent-memory device (crash tracking on so we
    // can demonstrate a power failure at the end).
    let nvm = Arc::new(Nvm::new(NvmConfig::for_testing(64 << 20)));
    let dude = DudeTm::create_stm(Arc::clone(&nvm), DudeTmConfig::small(16 << 20));
    println!("started {} runtime", TxnSystem::name(&dude));

    let mut thread = dude.register_thread();

    // Seed the accounts in one transaction.
    thread
        .run(&mut |tx| {
            for i in 0..ACCOUNTS {
                tx.write_word(account(i), INITIAL)?;
            }
            Ok(())
        })
        .expect_committed();

    // Transfer money around; `dtmAbort` (TxAbort::User) on empty accounts.
    let mut last_tid = 0;
    for round in 0..1000u64 {
        let src = round % ACCOUNTS;
        let dst = (round * 7 + 3) % ACCOUNTS;
        if src == dst {
            continue;
        }
        let out = thread.run(&mut |tx| {
            let s = tx.read_word(account(src))?;
            if s == 0 {
                return Err(TxAbort::User);
            }
            tx.write_word(account(src), s - 1)?;
            let d = tx.read_word(account(dst))?;
            tx.write_word(account(dst), d + 1)?;
            Ok(())
        });
        if let Some(info) = out.info() {
            last_tid = info.tid.unwrap_or(last_tid);
        }
    }

    // Durability acknowledgement: wait for the global durable ID (§3.3).
    thread.wait_durable(last_tid);
    println!(
        "transaction {last_tid} durable (durable ID {}, reproduced ID {})",
        dude.durable_id(),
        dude.reproduced_id()
    );

    // Check the invariant on the shadow memory.
    let total = thread
        .run(&mut |tx| {
            let mut sum = 0;
            for i in 0..ACCOUNTS {
                sum += tx.read_word(account(i))?;
            }
            Ok(sum)
        })
        .expect_committed();
    println!(
        "total balance in shadow memory: {total} (expected {})",
        ACCOUNTS * INITIAL
    );
    drop(thread);

    // Let Reproduce catch up, then verify the persistent image directly.
    dude.quiesce();
    let heap = dude.heap_region();
    let nvm_total: u64 = (0..ACCOUNTS)
        .map(|i| nvm.read_word(heap.start() + account(i).offset()))
        .sum();
    println!("total balance in persistent memory: {nvm_total}");

    let stats = dude.pipeline_stats();
    println!(
        "pipeline: {} commits, {} log entries persisted, {} reproduced",
        stats.commits, stats.entries_logged, stats.txns_reproduced
    );
    assert_eq!(total, ACCOUNTS * INITIAL);
    assert_eq!(nvm_total, ACCOUNTS * INITIAL);
    println!("ok: money conserved in both memories");
}
