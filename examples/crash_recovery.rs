//! Crash recovery walkthrough (§3.5).
//!
//! Runs durable transactions, simulates a power failure at an arbitrary
//! point (unflushed stores are dropped by the emulated device), recovers,
//! and shows that exactly the acknowledged-durable prefix survived —
//! including transactions whose Reproduce step had not run yet.
//!
//! Run with: `cargo run --release --example crash_recovery`

use std::sync::Arc;

use dude_nvm::{Nvm, NvmConfig};
use dude_txapi::{PAddr, TxnSystem, TxnThread};
use dudetm::{DudeTm, DudeTmConfig};

fn slot(i: u64) -> PAddr {
    PAddr::from_word_index(8 + i)
}

fn main() {
    let config = DudeTmConfig::small(8 << 20);
    let nvm = Arc::new(Nvm::new(NvmConfig::for_testing(32 << 20)));

    // Phase 1: run transactions, acknowledging durability for some.
    let mut acknowledged = Vec::new();
    {
        let dude = DudeTm::create_stm(Arc::clone(&nvm), config);
        let mut thread = dude.register_thread();
        for i in 0..200u64 {
            let out = thread.run(&mut |tx| {
                // Two-word record written atomically.
                tx.write_word(slot(2 * i), i + 1)?;
                tx.write_word(slot(2 * i + 1), (i + 1) * 1000)?;
                Ok(())
            });
            let tid = out.info().unwrap().tid.unwrap();
            if i % 2 == 0 {
                // Acknowledge durability for the even records only.
                thread.wait_durable(tid);
                acknowledged.push(i);
            }
        }
        drop(thread);
        println!(
            "before crash: durable ID {}, reproduced ID {}",
            dude.durable_id(),
            dude.reproduced_id()
        );
        // Power failure! Everything not flushed+fenced is gone. The
        // runtime is forgotten, not dropped — a dropped runtime would
        // drain its pipeline like a clean shutdown.
        nvm.crash();
        std::mem::forget(dude);
    }

    // Phase 2: recover.
    let (dude, report) = DudeTm::recover_stm(Arc::clone(&nvm), config).expect("recovery");
    println!(
        "recovery: checkpoint {}, replayed {} transactions, last tid {}, discarded {}",
        report.checkpoint, report.replayed, report.last_tid, report.discarded
    );

    // Every acknowledged transaction must be present and untorn.
    let mut thread = dude.register_thread();
    let mut recovered = 0;
    for &i in &acknowledged {
        let (a, b) = thread
            .run(&mut |tx| Ok((tx.read_word(slot(2 * i))?, tx.read_word(slot(2 * i + 1))?)))
            .expect_committed();
        assert_eq!(a, i + 1, "acknowledged record {i} lost");
        assert_eq!(b, (i + 1) * 1000, "record {i} torn");
        recovered += 1;
    }
    // Unacknowledged transactions may or may not have survived, but they
    // must never be torn.
    let mut unacked_survived = 0;
    for i in (1..200u64).step_by(2) {
        let (a, b) = thread
            .run(&mut |tx| Ok((tx.read_word(slot(2 * i))?, tx.read_word(slot(2 * i + 1))?)))
            .expect_committed();
        assert!(
            (a == 0 && b == 0) || (a == i + 1 && b == (i + 1) * 1000),
            "record {i} is torn: ({a}, {b})"
        );
        if a != 0 {
            unacked_survived += 1;
        }
    }
    println!(
        "ok: all {recovered} acknowledged records intact; \
         {unacked_survived}/100 unacknowledged records also survived (never torn)"
    );

    // The recovered runtime keeps working with continued transaction IDs.
    let out = thread.run(&mut |tx| tx.write_word(slot(500), 42));
    println!(
        "post-recovery transaction got tid {} (> {})",
        out.info().unwrap().tid.unwrap(),
        report.last_tid
    );
}
