//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! shim provides the (small) subset of the `parking_lot` API the
//! workspace uses — `Mutex`, `MutexGuard`, `RwLock` and their guards —
//! implemented over `std::sync` with parking_lot's non-poisoning
//! semantics: a panic while holding a lock does not poison it for later
//! users.
//!
//! Under `cfg(feature = "sim")` every acquisition becomes a yield point
//! of the `dude-sim` virtual scheduler (blocking waits turn into
//! try-lock/park loops, so a simulated task never blocks natively on a
//! lock held by a parked task), and every guard drop wakes the
//! scheduler's event waiters. Threads outside a simulated run keep the
//! native paths.

use std::sync::atomic::{AtomicBool, Ordering};

/// A non-poisoning mutual-exclusion lock (subset of `parking_lot::Mutex`).
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`]; the lock is released on drop.
pub struct MutexGuard<'a, T> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Creates a lock protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        #[cfg(feature = "sim")]
        if dude_sim::on_sim_task() {
            dude_sim::yield_point(dude_sim::YieldKind::Lock);
            loop {
                match self.inner.try_lock() {
                    Ok(g) => return MutexGuard { inner: g },
                    Err(std::sync::TryLockError::Poisoned(p)) => {
                        return MutexGuard {
                            inner: p.into_inner(),
                        }
                    }
                    Err(std::sync::TryLockError::WouldBlock) => {
                        dude_sim::block(dude_sim::YieldKind::Lock);
                    }
                }
            }
        }
        let inner = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        MutexGuard { inner }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        #[cfg(feature = "sim")]
        if dude_sim::on_sim_task() {
            dude_sim::yield_point(dude_sim::YieldKind::Lock);
        }
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: p.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

/// Releasing a lock is a scheduler event: parked acquirers re-try.
#[cfg(feature = "sim")]
impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // The inner std guard drops right after this body, before any
        // other simulated task can run (one task at a time).
        dude_sim::wake_all();
    }
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

/// A non-poisoning reader-writer lock (subset of `parking_lot::RwLock`).
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: std::sync::RwLock<T>,
    /// Set while a writer holds the lock, so `try_read` can refuse.
    writer_active: AtomicBool,
}

/// Shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T> {
    inner: Option<std::sync::RwLockWriteGuard<'a, T>>,
    writer_active: &'a AtomicBool,
}

impl<T> RwLock<T> {
    /// Creates a lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
            writer_active: AtomicBool::new(false),
        }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        #[cfg(feature = "sim")]
        if dude_sim::on_sim_task() {
            dude_sim::yield_point(dude_sim::YieldKind::Lock);
            loop {
                match self.inner.try_read() {
                    Ok(g) => return RwLockReadGuard { inner: g },
                    Err(std::sync::TryLockError::Poisoned(p)) => {
                        return RwLockReadGuard {
                            inner: p.into_inner(),
                        }
                    }
                    Err(std::sync::TryLockError::WouldBlock) => {
                        dude_sim::block(dude_sim::YieldKind::Lock);
                    }
                }
            }
        }
        let inner = match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        RwLockReadGuard { inner }
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        #[cfg(feature = "sim")]
        if dude_sim::on_sim_task() {
            dude_sim::yield_point(dude_sim::YieldKind::Lock);
            let inner = loop {
                match self.inner.try_write() {
                    Ok(g) => break g,
                    Err(std::sync::TryLockError::Poisoned(p)) => break p.into_inner(),
                    Err(std::sync::TryLockError::WouldBlock) => {
                        dude_sim::block(dude_sim::YieldKind::Lock);
                    }
                }
            };
            self.writer_active.store(true, Ordering::Release);
            return RwLockWriteGuard {
                inner: Some(inner),
                writer_active: &self.writer_active,
            };
        }
        let inner = match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        self.writer_active.store(true, Ordering::Release);
        RwLockWriteGuard {
            inner: Some(inner),
            writer_active: &self.writer_active,
        }
    }

    /// Attempts shared read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        #[cfg(feature = "sim")]
        if dude_sim::on_sim_task() {
            dude_sim::yield_point(dude_sim::YieldKind::Lock);
        }
        match self.inner.try_read() {
            Ok(g) => Some(RwLockReadGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(RwLockReadGuard {
                inner: p.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }
}

/// Releasing a read lock is a scheduler event: parked writers re-try.
#[cfg(feature = "sim")]
impl<T> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        dude_sim::wake_all();
    }
}

impl<T> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard live")
    }
}

impl<T> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard live")
    }
}

impl<T> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        self.writer_active.store(false, Ordering::Release);
        self.inner = None;
        #[cfg(feature = "sim")]
        dude_sim::wake_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn try_lock_refuses_when_held() {
        let m = Mutex::new(());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(5);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!((*a, *b), (5, 5));
        }
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
        assert_eq!(l.into_inner(), 6);
    }

    #[test]
    fn panic_does_not_poison() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poisoning attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }
}
