//! Offline stand-in for the `criterion` crate.
//!
//! Supports the subset used by the workspace's `cargo bench` suite:
//! `Criterion::default()` with the `sample_size` / `measurement_time` /
//! `warm_up_time` builders, `benchmark_group` → `bench_function` →
//! `Bencher::iter`, and the `criterion_group!` / `criterion_main!`
//! macros. Reports mean wall-clock time per iteration; there is no
//! statistical analysis, outlier detection or HTML report.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark-run configuration and entry point.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Total time budget for the timed samples.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Warm-up run time before sampling starts.
    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\nbenchmark group: {name}");
        BenchmarkGroup { criterion: self }
    }
}

/// A named set of benchmarks sharing the parent configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Times `f` and prints the mean per-iteration cost.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            iters: 0,
            elapsed: Duration::ZERO,
            deadline: Instant::now() + self.criterion.warm_up_time,
        };
        f(&mut b); // warm-up pass (measurements discarded)
        let per_sample = self.criterion.measurement_time / self.criterion.sample_size as u32;
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        for _ in 0..self.criterion.sample_size {
            b.iters = 0;
            b.elapsed = Duration::ZERO;
            b.deadline = Instant::now() + per_sample;
            f(&mut b);
            total += b.elapsed;
            iters += b.iters;
        }
        let mean_ns = if iters == 0 {
            0.0
        } else {
            total.as_nanos() as f64 / iters as f64
        };
        println!("  {id:40} {mean_ns:12.1} ns/iter ({iters} iters)");
        self
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; re-runs the routine until the
/// sample's time budget is spent.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
    deadline: Instant,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        loop {
            let start = Instant::now();
            black_box(routine());
            self.elapsed += start.elapsed();
            self.iters += 1;
            if Instant::now() >= self.deadline {
                return;
            }
        }
    }
}

/// Declares a benchmark group runner function.
#[macro_export]
macro_rules! criterion_group {
    (
        name = $name:ident;
        config = $config:expr;
        targets = $($target:path),+ $(,)?
    ) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ( $name:ident, $($target:path),+ $(,)? ) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ( $($group:path),+ $(,)? ) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_counts() {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(1));
        let mut calls = 0u64;
        let mut group = c.benchmark_group("smoke");
        group.bench_function("count", |b| b.iter(|| calls += 1));
        group.finish();
        assert!(calls > 0);
    }

    criterion_group! {
        name = demo;
        config = Criterion::default()
            .sample_size(1)
            .measurement_time(Duration::from_millis(2))
            .warm_up_time(Duration::from_millis(1));
        targets = noop
    }

    fn noop(c: &mut Criterion) {
        c.benchmark_group("noop")
            .bench_function("nop", |b| b.iter(|| 1));
    }

    #[test]
    fn group_macro_compiles_and_runs() {
        demo();
    }
}
