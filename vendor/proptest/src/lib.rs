//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! shim reimplements the subset of proptest the workspace's property
//! tests use: the [`Strategy`] trait (ranges, tuples, `any`, `prop_map`,
//! `boxed`), [`collection::vec`], the [`proptest!`] / [`prop_assert!`] /
//! [`prop_assert_eq!`] / [`prop_oneof!`] macros and [`ProptestConfig`].
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * cases are drawn from a **deterministic** per-test RNG (seeded from
//!   the test's module path and case index), so failures reproduce
//!   exactly on every run and machine;
//! * there is **no shrinking** — the failing case's inputs are whatever
//!   the assertion message prints;
//! * value distributions are uniform rather than edge-biased.

use std::ops::Range;

/// Deterministic RNG (splitmix64) driving case generation.
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Seeds the RNG for one `(test, case)` pair. FNV over the test name
    /// keeps distinct tests on distinct streams.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng(h ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        // Rejection sampling kills modulo bias; at most one retry expected.
        let zone = u64::MAX - u64::MAX % n;
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % n;
            }
        }
    }
}

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of test-case values.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (needed by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(move |rng| self.generate(rng)))
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A type-erased strategy (see [`Strategy::boxed`]).
pub struct BoxedStrategy<V>(Box<dyn Fn(&mut TestRng) -> V>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (self.0)(rng)
    }
}

/// Uniform choice between same-valued strategies (see [`prop_oneof!`]).
pub struct Union<V>(pub Vec<BoxedStrategy<V>>);

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        assert!(!self.0.is_empty(), "prop_oneof! of zero strategies");
        let i = rng.below(self.0.len() as u64) as usize;
        self.0[i].generate(rng)
    }
}

/// Generates an arbitrary value of a primitive type (see [`any`]).
pub trait Arbitrary {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy over the full domain of `T` (`any::<u64>()` etc.).
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The strategy generating any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(width) as $t)
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// See [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates `Vec`s of `element` values with a length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let width = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(width) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a property test usually imports.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestRng,
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Declares property tests: each `fn name(binder in strategy, ...)` body
/// runs once per generated case.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_body! { cfg = $cfg; $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_body! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ( cfg = $cfg:expr; ) => {};
    (
        cfg = $cfg:expr;
        $(#[$meta:meta])*
        fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut rng = $crate::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)+
                $body
            }
        }
        $crate::__proptest_body! { cfg = $cfg; $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_case("ranges", 0);
        for _ in 0..1000 {
            let v = Strategy::generate(&(10u64..20), &mut rng);
            assert!((10..20).contains(&v));
            let w = Strategy::generate(&(0usize..3), &mut rng);
            assert!(w < 3);
        }
    }

    #[test]
    fn full_u64_range_generates_near_extremes() {
        let mut rng = TestRng::for_case("extremes", 0);
        let mut max_seen = 0u64;
        for _ in 0..4096 {
            max_seen = max_seen.max(Strategy::generate(&(1u64..u64::MAX), &mut rng));
        }
        assert!(max_seen > u64::MAX / 2, "{max_seen}");
    }

    #[test]
    fn vec_lengths_respect_size_range() {
        let mut rng = TestRng::for_case("vec", 0);
        for _ in 0..200 {
            let v = crate::collection::vec(any::<u8>(), 1..5).generate(&mut rng);
            assert!((1..5).contains(&v.len()));
        }
    }

    #[test]
    fn determinism_per_case() {
        let a =
            crate::collection::vec(any::<u64>(), 1..64).generate(&mut TestRng::for_case("det", 7));
        let b =
            crate::collection::vec(any::<u64>(), 1..64).generate(&mut TestRng::for_case("det", 7));
        assert_eq!(a, b);
    }

    #[test]
    fn oneof_covers_all_variants() {
        let strat = prop_oneof![
            (0u64..10).prop_map(|v| (0u8, v)),
            (10u64..20).prop_map(|v| (1u8, v)),
        ];
        let mut rng = TestRng::for_case("oneof", 0);
        let mut seen = [false; 2];
        for _ in 0..100 {
            let (tag, v) = strat.generate(&mut rng);
            seen[tag as usize] = true;
            match tag {
                0 => assert!(v < 10),
                _ => assert!((10..20).contains(&v)),
            }
        }
        assert!(seen[0] && seen[1]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself compiles and binds tuples, vecs and anys.
        #[test]
        fn macro_smoke(
            x in 1u64..100,
            pair in (any::<bool>(), 0u32..7),
            data in crate::collection::vec(any::<u8>(), 0..16),
        ) {
            prop_assert!(x >= 1 && x < 100);
            prop_assert!(pair.1 < 7);
            prop_assert_eq!(data.len(), data.len());
        }
    }
}
