//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides the subset the workspace uses: `crossbeam::channel` with
//! [`channel::bounded`] / [`channel::unbounded`] MPMC channels whose
//! senders and receivers are cloneable, plus the matching error types.
//! Implemented with a `Mutex<VecDeque>` and two condvars; throughput is
//! adequate for the pipeline's per-transaction record granularity.
//!
//! Under `cfg(feature = "sim")` every channel operation on a simulated
//! task becomes a yield point of the `dude-sim` virtual scheduler:
//! blocking sends/recvs turn into nonblocking-check/park loops (so a
//! simulated task never blocks natively on a peer that is itself
//! parked), `recv_timeout` deadlines run on the virtual clock, and every
//! state change (successful op, endpoint disconnect) wakes the
//! scheduler's event waiters. Threads outside a simulated run keep the
//! native condvar paths.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    /// Error returned by [`Sender::send`] when all receivers are gone.
    /// Carries the unsent message, like crossbeam's.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Sender::try_send`]. Carries the unsent message,
    /// like crossbeam's.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The bounded channel is at capacity.
        Full(T),
        /// All receivers are gone.
        Disconnected(T),
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// All senders are gone and the buffer is drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// All senders are gone and the buffer is drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        /// Capacity bound; `None` for unbounded channels.
        cap: Option<usize>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    /// The sending half of a channel. Cloneable (MPMC).
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of a channel. Cloneable (MPMC).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> std::fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> std::fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    fn new_channel<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            cap,
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    /// Creates a channel holding at most `cap` in-flight messages; sends
    /// block while it is full (the pipeline's backpressure).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        new_channel(Some(cap))
    }

    /// Creates a channel with no capacity bound; sends never block.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        new_channel(None)
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().expect("channel lock").senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let disconnected = {
                let mut st = self.shared.state.lock().expect("channel lock");
                st.senders -= 1;
                if st.senders == 0 {
                    // Wake receivers so they observe the disconnect.
                    self.shared.not_empty.notify_all();
                }
                st.senders == 0
            };
            #[cfg(feature = "sim")]
            if disconnected {
                dude_sim::wake_all();
            }
            #[cfg(not(feature = "sim"))]
            let _ = disconnected;
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().expect("channel lock").receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let disconnected = {
                let mut st = self.shared.state.lock().expect("channel lock");
                st.receivers -= 1;
                if st.receivers == 0 {
                    // Wake blocked senders so they observe the disconnect.
                    self.shared.not_full.notify_all();
                }
                st.receivers == 0
            };
            #[cfg(feature = "sim")]
            if disconnected {
                dude_sim::wake_all();
            }
            #[cfg(not(feature = "sim"))]
            let _ = disconnected;
        }
    }

    impl<T> Sender<T> {
        /// Sends `msg`, blocking while a bounded channel is full. Fails only
        /// when every receiver has been dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            #[cfg(feature = "sim")]
            if dude_sim::on_sim_task() {
                return self.send_sim(msg);
            }
            let mut st = self.shared.state.lock().expect("channel lock");
            loop {
                if st.receivers == 0 {
                    return Err(SendError(msg));
                }
                match self.shared.cap {
                    Some(cap) if st.queue.len() >= cap => {
                        st = self.shared.not_full.wait(st).expect("channel lock");
                    }
                    _ => break,
                }
            }
            st.queue.push_back(msg);
            self.shared.not_empty.notify_one();
            Ok(())
        }

        /// Simulated-scheduler send: a nonblocking-check/park loop, so the
        /// task parks on the virtual scheduler (not a native condvar) while
        /// the channel is full.
        #[cfg(feature = "sim")]
        fn send_sim(&self, msg: T) -> Result<(), SendError<T>> {
            dude_sim::yield_point(dude_sim::YieldKind::Chan);
            let mut msg = Some(msg);
            loop {
                {
                    let mut st = self.shared.state.lock().expect("channel lock");
                    if st.receivers == 0 {
                        return Err(SendError(msg.take().expect("message pending")));
                    }
                    if self.shared.cap.is_none_or(|cap| st.queue.len() < cap) {
                        st.queue.push_back(msg.take().expect("message pending"));
                        drop(st);
                        self.shared.not_empty.notify_one();
                        dude_sim::wake_all();
                        return Ok(());
                    }
                }
                dude_sim::block(dude_sim::YieldKind::Chan);
            }
        }

        /// Sends `msg` without blocking: fails with [`TrySendError::Full`]
        /// when a bounded channel is at capacity (returning the message),
        /// letting callers observe backpressure instead of waiting it out.
        pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
            #[cfg(feature = "sim")]
            let on_sim = dude_sim::on_sim_task();
            #[cfg(feature = "sim")]
            if on_sim {
                dude_sim::yield_point(dude_sim::YieldKind::Chan);
            }
            let mut st = self.shared.state.lock().expect("channel lock");
            if st.receivers == 0 {
                return Err(TrySendError::Disconnected(msg));
            }
            if let Some(cap) = self.shared.cap {
                if st.queue.len() >= cap {
                    return Err(TrySendError::Full(msg));
                }
            }
            st.queue.push_back(msg);
            drop(st);
            self.shared.not_empty.notify_one();
            #[cfg(feature = "sim")]
            if on_sim {
                dude_sim::wake_all();
            }
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Pops a message if one is ready, reporting disconnect; shared by
        /// the native and simulated paths. Wakes native senders on success.
        fn pop_ready(&self) -> Result<T, TryRecvError> {
            let mut st = self.shared.state.lock().expect("channel lock");
            match st.queue.pop_front() {
                Some(msg) => {
                    drop(st);
                    self.shared.not_full.notify_one();
                    Ok(msg)
                }
                None if st.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Receives without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            #[cfg(feature = "sim")]
            let on_sim = dude_sim::on_sim_task();
            #[cfg(feature = "sim")]
            if on_sim {
                dude_sim::yield_point(dude_sim::YieldKind::Chan);
            }
            let res = self.pop_ready();
            #[cfg(feature = "sim")]
            if on_sim && res.is_ok() {
                dude_sim::wake_all();
            }
            res
        }

        /// Simulated-scheduler receive: parks on the virtual scheduler
        /// until a message, disconnect, or (optionally) a virtual-clock
        /// deadline.
        #[cfg(feature = "sim")]
        fn recv_sim(&self, deadline_ns: Option<u64>) -> Result<T, RecvTimeoutError> {
            dude_sim::yield_point(dude_sim::YieldKind::Chan);
            loop {
                match self.pop_ready() {
                    Ok(msg) => {
                        dude_sim::wake_all();
                        return Ok(msg);
                    }
                    Err(TryRecvError::Disconnected) => return Err(RecvTimeoutError::Disconnected),
                    Err(TryRecvError::Empty) => {}
                }
                match deadline_ns {
                    Some(d) => {
                        if dude_sim::now_ns() >= d {
                            return Err(RecvTimeoutError::Timeout);
                        }
                        dude_sim::block_until(d, dude_sim::YieldKind::Chan);
                    }
                    None => dude_sim::block(dude_sim::YieldKind::Chan),
                }
            }
        }

        /// Receives, blocking up to `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            #[cfg(feature = "sim")]
            if dude_sim::on_sim_task() {
                let deadline = dude_sim::now_ns()
                    .saturating_add(u64::try_from(timeout.as_nanos()).unwrap_or(u64::MAX));
                return self.recv_sim(Some(deadline));
            }
            let deadline = Instant::now() + timeout;
            let mut st = self.shared.state.lock().expect("channel lock");
            loop {
                if let Some(msg) = st.queue.pop_front() {
                    self.shared.not_full.notify_one();
                    return Ok(msg);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _res) = self
                    .shared
                    .not_empty
                    .wait_timeout(st, deadline - now)
                    .expect("channel lock");
                st = guard;
            }
        }

        /// Receives, blocking until a message arrives or all senders drop.
        pub fn recv(&self) -> Result<T, RecvError> {
            #[cfg(feature = "sim")]
            if dude_sim::on_sim_task() {
                return match self.recv_sim(None) {
                    Ok(msg) => Ok(msg),
                    Err(_) => Err(RecvError),
                };
            }
            let mut st = self.shared.state.lock().expect("channel lock");
            loop {
                if let Some(msg) = st.queue.pop_front() {
                    self.shared.not_full.notify_one();
                    return Ok(msg);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.shared.not_empty.wait(st).expect("channel lock");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;
    use std::time::Duration;

    #[test]
    fn unbounded_roundtrip() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.try_recv(), Ok(1));
        assert_eq!(rx.recv_timeout(Duration::from_millis(1)), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn disconnect_observed_after_drain() {
        let (tx, rx) = unbounded();
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.try_recv(), Ok(7));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn send_fails_without_receivers() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert_eq!(tx.send(9), Err(SendError(9)));
    }

    #[test]
    fn bounded_blocks_until_drained() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let t = std::thread::spawn(move || {
            tx.send(2).unwrap(); // blocks until the first recv
            tx
        });
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(rx.try_recv(), Ok(1));
        let tx = t.join().unwrap();
        assert_eq!(rx.try_recv(), Ok(2));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn try_send_observes_full_and_disconnect() {
        let (tx, rx) = bounded(1);
        assert_eq!(tx.try_send(1), Ok(()));
        assert_eq!(tx.try_send(2), Err(TrySendError::Full(2)));
        assert_eq!(rx.try_recv(), Ok(1));
        assert_eq!(tx.try_send(3), Ok(()));
        drop(rx);
        assert_eq!(tx.try_send(4), Err(TrySendError::Disconnected(4)));
    }

    #[test]
    fn timeout_elapses_empty() {
        let (tx, rx) = unbounded::<u8>();
        let start = std::time::Instant::now();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(20)),
            Err(RecvTimeoutError::Timeout)
        );
        assert!(start.elapsed() >= Duration::from_millis(15));
        drop(tx);
    }

    #[test]
    fn mpmc_clones_share_queue() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        let rx2 = rx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        let a = rx.recv().unwrap();
        let b = rx2.recv().unwrap();
        let mut got = vec![a, b];
        got.sort_unstable();
        assert_eq!(got, vec![1, 2]);
    }
}
