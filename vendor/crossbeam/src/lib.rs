//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides the subset the workspace uses: `crossbeam::channel` with
//! [`channel::bounded`] / [`channel::unbounded`] MPMC channels whose
//! senders and receivers are cloneable, plus the matching error types.
//! Implemented with a `Mutex<VecDeque>` and two condvars; throughput is
//! adequate for the pipeline's per-transaction record granularity.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    /// Error returned by [`Sender::send`] when all receivers are gone.
    /// Carries the unsent message, like crossbeam's.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Sender::try_send`]. Carries the unsent message,
    /// like crossbeam's.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The bounded channel is at capacity.
        Full(T),
        /// All receivers are gone.
        Disconnected(T),
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// All senders are gone and the buffer is drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// All senders are gone and the buffer is drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        /// Capacity bound; `None` for unbounded channels.
        cap: Option<usize>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    /// The sending half of a channel. Cloneable (MPMC).
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of a channel. Cloneable (MPMC).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> std::fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> std::fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    fn new_channel<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            cap,
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    /// Creates a channel holding at most `cap` in-flight messages; sends
    /// block while it is full (the pipeline's backpressure).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        new_channel(Some(cap))
    }

    /// Creates a channel with no capacity bound; sends never block.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        new_channel(None)
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().expect("channel lock").senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.shared.state.lock().expect("channel lock");
            st.senders -= 1;
            if st.senders == 0 {
                // Wake receivers so they observe the disconnect.
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().expect("channel lock").receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.shared.state.lock().expect("channel lock");
            st.receivers -= 1;
            if st.receivers == 0 {
                // Wake blocked senders so they observe the disconnect.
                self.shared.not_full.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        /// Sends `msg`, blocking while a bounded channel is full. Fails only
        /// when every receiver has been dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut st = self.shared.state.lock().expect("channel lock");
            loop {
                if st.receivers == 0 {
                    return Err(SendError(msg));
                }
                match self.shared.cap {
                    Some(cap) if st.queue.len() >= cap => {
                        st = self.shared.not_full.wait(st).expect("channel lock");
                    }
                    _ => break,
                }
            }
            st.queue.push_back(msg);
            self.shared.not_empty.notify_one();
            Ok(())
        }

        /// Sends `msg` without blocking: fails with [`TrySendError::Full`]
        /// when a bounded channel is at capacity (returning the message),
        /// letting callers observe backpressure instead of waiting it out.
        pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
            let mut st = self.shared.state.lock().expect("channel lock");
            if st.receivers == 0 {
                return Err(TrySendError::Disconnected(msg));
            }
            if let Some(cap) = self.shared.cap {
                if st.queue.len() >= cap {
                    return Err(TrySendError::Full(msg));
                }
            }
            st.queue.push_back(msg);
            self.shared.not_empty.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Receives without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.shared.state.lock().expect("channel lock");
            match st.queue.pop_front() {
                Some(msg) => {
                    self.shared.not_full.notify_one();
                    Ok(msg)
                }
                None if st.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Receives, blocking up to `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = self.shared.state.lock().expect("channel lock");
            loop {
                if let Some(msg) = st.queue.pop_front() {
                    self.shared.not_full.notify_one();
                    return Ok(msg);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _res) = self
                    .shared
                    .not_empty
                    .wait_timeout(st, deadline - now)
                    .expect("channel lock");
                st = guard;
            }
        }

        /// Receives, blocking until a message arrives or all senders drop.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.shared.state.lock().expect("channel lock");
            loop {
                if let Some(msg) = st.queue.pop_front() {
                    self.shared.not_full.notify_one();
                    return Ok(msg);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.shared.not_empty.wait(st).expect("channel lock");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;
    use std::time::Duration;

    #[test]
    fn unbounded_roundtrip() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.try_recv(), Ok(1));
        assert_eq!(rx.recv_timeout(Duration::from_millis(1)), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn disconnect_observed_after_drain() {
        let (tx, rx) = unbounded();
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.try_recv(), Ok(7));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn send_fails_without_receivers() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert_eq!(tx.send(9), Err(SendError(9)));
    }

    #[test]
    fn bounded_blocks_until_drained() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let t = std::thread::spawn(move || {
            tx.send(2).unwrap(); // blocks until the first recv
            tx
        });
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(rx.try_recv(), Ok(1));
        let tx = t.join().unwrap();
        assert_eq!(rx.try_recv(), Ok(2));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn try_send_observes_full_and_disconnect() {
        let (tx, rx) = bounded(1);
        assert_eq!(tx.try_send(1), Ok(()));
        assert_eq!(tx.try_send(2), Err(TrySendError::Full(2)));
        assert_eq!(rx.try_recv(), Ok(1));
        assert_eq!(tx.try_send(3), Ok(()));
        drop(rx);
        assert_eq!(tx.try_send(4), Err(TrySendError::Disconnected(4)));
    }

    #[test]
    fn timeout_elapses_empty() {
        let (tx, rx) = unbounded::<u8>();
        let start = std::time::Instant::now();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(20)),
            Err(RecvTimeoutError::Timeout)
        );
        assert!(start.elapsed() >= Duration::from_millis(15));
        drop(tx);
    }

    #[test]
    fn mpmc_clones_share_queue() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        let rx2 = rx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        let a = rx.recv().unwrap();
        let b = rx2.recv().unwrap();
        let mut got = vec![a, b];
        got.sort_unstable();
        assert_eq!(got, vec![1, 2]);
    }
}
