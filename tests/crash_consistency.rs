//! Randomized crash-point testing across the whole stack.
//!
//! The invariants checked here are the ones the paper's design arguments
//! promise but its DRAM-emulated evaluation could never observe:
//!
//! 1. **Durability** — every transaction whose durability was acknowledged
//!    (durable ID ≥ tid) survives any later crash.
//! 2. **Atomicity** — recovered state never contains a torn transaction.
//! 3. **Consistency** — application invariants (conserved bank total) hold
//!    after recovery, regardless of where the crash hit the pipeline.
//! 4. **Prefix semantics** — the recovered state equals the replay of a
//!    contiguous prefix of the committed transaction sequence.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use dude_nvm::{Nvm, NvmConfig};
use dude_txapi::{PAddr, TxAbort, TxnSystem, TxnThread};
use dudetm::{DudeTm, DudeTmConfig, DurabilityMode};

const ACCOUNTS: u64 = 24;
const INITIAL: u64 = 50;

fn slot(i: u64) -> PAddr {
    PAddr::from_word_index(8 + i)
}

fn config() -> DudeTmConfig {
    DudeTmConfig {
        max_threads: 6,
        plog_bytes_per_thread: 1 << 18,
        checkpoint_every: 8,
        ..DudeTmConfig::small(1 << 20)
    }
}

/// Runs concurrent transfers, crashes mid-flight after a seed-dependent
/// delay, recovers, and checks all four invariants.
fn crash_round(seed: u64, mode: DurabilityMode) {
    let nvm = Arc::new(Nvm::new(NvmConfig::for_testing(4 << 20)));
    let cfg = config().with_durability(mode);
    let max_acked = Arc::new(AtomicU64::new(0));
    {
        let dude = Arc::new(DudeTm::create_stm(Arc::clone(&nvm), cfg));
        // Seed balances.
        {
            let mut t = dude.register_thread();
            t.run(&mut |tx| {
                for i in 0..ACCOUNTS {
                    tx.write_word(slot(i), INITIAL)?;
                }
                Ok(())
            })
            .expect_committed();
        }
        let stop = Arc::new(AtomicU64::new(0));
        std::thread::scope(|s| {
            for w in 0..3u64 {
                let dude = Arc::clone(&dude);
                let stop = Arc::clone(&stop);
                let max_acked = Arc::clone(&max_acked);
                s.spawn(move || {
                    let mut t = dude.register_thread();
                    let mut x = seed ^ (w + 1).wrapping_mul(0x9E37);
                    let mut ops = 0u64;
                    while stop.load(Ordering::Relaxed) == 0 {
                        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                        let a = (x >> 33) % ACCOUNTS;
                        let b = (x >> 13) % ACCOUNTS;
                        if a == b {
                            continue;
                        }
                        let out = t.run(&mut |tx| {
                            let va = tx.read_word(slot(a))?;
                            if va == 0 {
                                return Err(TxAbort::User);
                            }
                            tx.write_word(slot(a), va - 1)?;
                            let vb = tx.read_word(slot(b))?;
                            tx.write_word(slot(b), vb + 1)
                        });
                        ops += 1;
                        // Occasionally acknowledge durability explicitly.
                        if ops.is_multiple_of(37) {
                            if let Some(info) = out.info() {
                                if let Some(tid) = info.tid {
                                    t.wait_durable(tid);
                                    max_acked.fetch_max(tid, Ordering::Relaxed);
                                }
                            }
                        }
                    }
                });
            }
            // Let the workload run a seed-dependent amount, then stop the
            // workers. The crash itself happens right after the scope join:
            // a real power failure stops *all* execution instantly, so
            // acknowledgements recorded by still-running workers after the
            // crash point would be artifacts of the emulation, not of the
            // system under test. The pipeline threads are still live at the
            // crash, so in-flight persists are exercised.
            std::thread::sleep(std::time::Duration::from_millis(20 + seed % 60));
            stop.store(1, Ordering::Relaxed);
        });
        nvm.crash();
        // Abandon the runtime without the clean-drain drop.
        match Arc::try_unwrap(dude) {
            Ok(d) => std::mem::forget(d),
            Err(_) => panic!("runtime still shared"),
        }
    }

    // Recover and verify.
    let (dude2, report) = DudeTm::recover_stm(Arc::clone(&nvm), cfg).expect("recovery");
    let acked = max_acked.load(Ordering::Relaxed);
    assert!(
        report.last_tid >= acked,
        "seed {seed}: acknowledged tid {acked} lost (recovered to {})",
        report.last_tid
    );
    let heap = dude2.heap_region();
    let total: u64 = (0..ACCOUNTS)
        .map(|i| nvm.read_word(heap.start() + slot(i).offset()))
        .sum();
    assert_eq!(
        total,
        ACCOUNTS * INITIAL,
        "seed {seed}: money not conserved after crash at tid {}",
        report.last_tid
    );
    // The recovered runtime keeps working.
    let mut t = dude2.register_thread();
    let out = t.run(&mut |tx| {
        let v = tx.read_word(slot(0))?;
        tx.write_word(slot(0), v)
    });
    assert!(out.info().unwrap().tid.unwrap() > report.last_tid);
}

#[test]
fn randomized_crash_async_mode() {
    for seed in 0..6 {
        crash_round(seed, DurabilityMode::Async { buffer_txns: 64 });
    }
}

#[test]
fn randomized_crash_sync_mode() {
    for seed in 0..4 {
        crash_round(seed * 3 + 1, DurabilityMode::Sync);
    }
}

#[test]
fn randomized_crash_unbounded_mode() {
    for seed in 0..4 {
        crash_round(seed * 7 + 2, DurabilityMode::AsyncUnbounded);
    }
}

/// Crash → recover → crash again immediately → recover: recovery must be
/// idempotent (replaying the same prefix twice is harmless).
#[test]
fn double_crash_recovery_is_idempotent() {
    let nvm = Arc::new(Nvm::new(NvmConfig::for_testing(4 << 20)));
    let cfg = config();
    {
        let dude = DudeTm::create_stm(Arc::clone(&nvm), cfg);
        let mut t = dude.register_thread();
        for i in 0..100u64 {
            let out = t.run(&mut |tx| tx.write_word(slot(i % ACCOUNTS), i));
            let tid = out.info().unwrap().tid.unwrap();
            t.wait_durable(tid);
        }
        drop(t);
        nvm.crash();
        std::mem::forget(dude);
    }
    let (dude_a, report_a) = DudeTm::recover_stm(Arc::clone(&nvm), cfg).unwrap();
    let heap = dude_a.heap_region();
    let snapshot: Vec<u64> = (0..ACCOUNTS)
        .map(|i| nvm.read_word(heap.start() + slot(i).offset()))
        .collect();
    // Crash again without any new work; drop via forget so the pipeline
    // cannot checkpoint post-crash.
    nvm.crash();
    std::mem::forget(dude_a);
    let (dude_b, report_b) = DudeTm::recover_stm(Arc::clone(&nvm), cfg).unwrap();
    assert_eq!(report_b.last_tid, report_a.last_tid);
    assert_eq!(report_b.replayed, 0, "second recovery replays nothing");
    let heap = dude_b.heap_region();
    let snapshot2: Vec<u64> = (0..ACCOUNTS)
        .map(|i| nvm.read_word(heap.start() + slot(i).offset()))
        .collect();
    assert_eq!(snapshot, snapshot2);
}

/// The lenient crash model (flushed-but-unfenced lines survive) must also
/// recover consistently — crash outcomes in the CLWB/SFENCE window can go
/// either way on real hardware.
#[test]
fn lenient_crash_still_consistent() {
    let nvm = Arc::new(Nvm::new(NvmConfig::for_testing(4 << 20)));
    let cfg = config();
    {
        let dude = DudeTm::create_stm(Arc::clone(&nvm), cfg);
        let mut t = dude.register_thread();
        for i in 0..200u64 {
            t.run(&mut |tx| {
                tx.write_word(slot(0), i)?;
                tx.write_word(slot(1), i)
            })
            .expect_committed();
        }
        drop(t);
        nvm.crash_lenient();
        std::mem::forget(dude);
    }
    let (dude2, _) = DudeTm::recover_stm(Arc::clone(&nvm), cfg).unwrap();
    let heap = dude2.heap_region();
    let a = nvm.read_word(heap.start() + slot(0).offset());
    let b = nvm.read_word(heap.start() + slot(1).offset());
    assert_eq!(a, b, "lenient crash broke atomicity");
}
