//! Multi-threaded crash-point sweep with the durable-linearizability
//! oracle (`dude-check`).
//!
//! `tests/crash_sweep.rs` enumerates crash points under a single Perform
//! thread, where the committed sequence is predetermined. This suite runs
//! *concurrent* Perform threads, so the commit order is decided at run time
//! by the global clock; the property under test is **durable
//! linearizability**: after a crash at any persistence event, the recovered
//! heap must equal the replay of exactly a contiguous TID-prefix of the
//! history that actually happened.
//!
//! Mechanics per round:
//! 1. attach a [`dudetm::CommitHistory`] recorder to a fresh runtime;
//! 2. run a seeded workload on 2–8 threads (bank transfers — conflicting,
//!    abort-marker-producing — or per-thread counters — conflict-free,
//!    maximally interleaved TIDs), arming a [`CrashPlan`] at the n-th
//!    flush/fence/store;
//! 3. freeze the crash image, recover with [`recover_device`], and hand
//!    the recorded history plus the recovered heap to
//!    [`dudetm::check_prefix`];
//! 4. check the workload's own invariant (conserved bank sum, monotone
//!    counters bounded by acknowledged progress) as an independent second
//!    oracle.
//!
//! The config matrix covers `persist_threads ∈ {1,2}`, `persist_group ∈
//! {1,8}` with and without `compress_groups`, `persist_flush_workers ∈
//! {1,2,4}` on the grouped path, `reproduce_threads ∈ {1,4}`, and
//! Async/AsyncUnbounded/Sync durability — every valid combination of the
//! axes (grouping requires an async mode; see
//! `DudeTmConfig::try_validate`). With the default seed set the sweeps
//! below enumerate well over 500 `(seed × crash point × config)` cases;
//! set `DUDE_SWEEP_SEEDS=7,1337,424242` (comma-separated) to rerun the
//! same matrix under other interleavings, as CI does in release mode.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use dude_nvm::{CrashEventKind, CrashPlan, Nvm, NvmConfig, StageFilter};
use dude_txapi::{PAddr, TxAbort, TxnSystem, TxnThread};
use dudetm::{check_prefix, recover_device, CommitHistory, DudeTm, DudeTmConfig, DurabilityMode};

const ACCOUNTS: u64 = 16;
const INITIAL: u64 = 100;

fn slot(i: u64) -> PAddr {
    PAddr::from_word_index(8 + i)
}

/// Seeds for the sweep: `DUDE_SWEEP_SEEDS=a,b,c` overrides the default
/// pair (CI passes three).
fn seeds() -> Vec<u64> {
    match std::env::var("DUDE_SWEEP_SEEDS") {
        Ok(s) => s
            .split(',')
            .map(|t| {
                t.trim()
                    .parse()
                    .unwrap_or_else(|_| panic!("bad DUDE_SWEEP_SEEDS entry {t:?}"))
            })
            .collect(),
        Err(_) => vec![7, 1337],
    }
}

fn cfg(
    mode: DurabilityMode,
    persist_threads: usize,
    persist_group: usize,
    compress: bool,
    reproduce_threads: usize,
) -> DudeTmConfig {
    let c = DudeTmConfig {
        max_threads: 10,
        plog_bytes_per_thread: 1 << 16,
        checkpoint_every: 8,
        persist_threads,
        persist_group,
        compress_groups: compress,
        reproduce_threads,
        ..DudeTmConfig::small(1 << 16)
    }
    .with_durability(mode);
    c.try_validate().expect("sweep matrix combo must be valid");
    c
}

/// Grouped config with the Persist stage split into a sequencer plus
/// `workers` parallel flush workers (each owning one log ring).
fn cfg_fw(
    mode: DurabilityMode,
    persist_group: usize,
    compress: bool,
    reproduce_threads: usize,
    workers: usize,
) -> DudeTmConfig {
    let c = cfg(mode, 1, persist_group, compress, reproduce_threads).with_flush_workers(workers);
    c.try_validate().expect("flush-worker combo must be valid");
    c
}

fn fresh_nvm() -> Arc<Nvm> {
    Arc::new(Nvm::new(NvmConfig::for_testing(1 << 20)))
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Workload {
    /// Random transfers between shared accounts: conflicting read-write
    /// sets, commit-time aborts (wasted TIDs → abort markers).
    Bank,
    /// Each thread increments its own counter word: conflict-free, so the
    /// TID sequence interleaves all threads densely.
    Counters,
}

struct MtRun {
    /// Highest TID acknowledged durable strictly before the crash instant.
    acked_tid: u64,
    /// Per-worker count of increments acknowledged durable before the
    /// crash instant (Counters only).
    acked_incr: Vec<u64>,
    history: Arc<CommitHistory>,
}

/// Runs `threads` workers × `ops` transactions each to clean shutdown,
/// recording the commit history. With a plan armed the crash image freezes
/// mid-run while live threads keep going (the emulator never wedges the
/// pipeline); acknowledgements observed after the trip belong to the
/// post-crash timeline and are excluded.
fn run_mt(
    nvm: &Arc<Nvm>,
    cfg: DudeTmConfig,
    workload: Workload,
    threads: usize,
    ops: u64,
    seed: u64,
    plan: Option<CrashPlan>,
) -> MtRun {
    let dude = Arc::new(DudeTm::create_stm(Arc::clone(nvm), cfg));
    let history = Arc::new(CommitHistory::new(64 + 16 * threads * ops as usize));
    dude.attach_history(Arc::clone(&history));
    match plan {
        Some(p) => nvm.arm_crash_plan(p),
        // Counting pass: exclude formatting, like the armed runs do.
        None => nvm.reset_persistence_events(),
    }
    if workload == Workload::Bank {
        // Seed balances before any worker runs, so the seeding commit is
        // always tid 1 and the conserved-sum invariant covers every prefix
        // with last_tid >= 1.
        let mut t = dude.register_thread();
        t.run(&mut |tx| {
            for i in 0..ACCOUNTS {
                tx.write_word(slot(i), INITIAL)?;
            }
            Ok(())
        })
        .expect_committed();
    }
    let acked_tid = AtomicU64::new(0);
    let acked_incr: Vec<AtomicU64> = (0..threads).map(|_| AtomicU64::new(0)).collect();
    std::thread::scope(|s| {
        for w in 0..threads {
            let dude = Arc::clone(&dude);
            let nvm = Arc::clone(nvm);
            let acked_tid = &acked_tid;
            let acked_incr = &acked_incr;
            s.spawn(move || {
                let mut t = dude.register_thread();
                let mut x = seed ^ (w as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                for op in 0..ops {
                    let committed = match workload {
                        Workload::Bank => {
                            let (a, b) = loop {
                                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                                let a = (x >> 33) % ACCOUNTS;
                                let b = (x >> 13) % ACCOUNTS;
                                if a != b {
                                    break (a, b);
                                }
                            };
                            let out = t.run(&mut |tx| {
                                let va = tx.read_word(slot(a))?;
                                if va == 0 {
                                    return Err(TxAbort::User);
                                }
                                tx.write_word(slot(a), va - 1)?;
                                let vb = tx.read_word(slot(b))?;
                                tx.write_word(slot(b), vb + 1)
                            });
                            out.info().and_then(|i| i.tid)
                        }
                        Workload::Counters => {
                            let out = t.run(&mut |tx| {
                                let v = tx.read_word(slot(w as u64))?;
                                tx.write_word(slot(w as u64), v + 1)
                            });
                            Some(out.info().expect("counter tx commits").tid.unwrap())
                        }
                    };
                    if let Some(tid) = committed {
                        if op % 4 == 3 {
                            t.wait_durable(tid);
                            // `wait_durable` returned before the trip was
                            // observed, so the covering fence completed
                            // before the crash instant.
                            if !nvm.crash_plan_tripped() {
                                acked_tid.fetch_max(tid, Ordering::Relaxed);
                                acked_incr[w].fetch_max(op + 1, Ordering::Relaxed);
                            }
                        }
                    }
                }
            });
        }
    });
    drop(
        Arc::try_unwrap(dude)
            .unwrap_or_else(|_| panic!("workers joined, runtime must be unshared")),
    );
    MtRun {
        acked_tid: acked_tid.load(Ordering::Relaxed),
        acked_incr: acked_incr
            .iter()
            .map(|a| a.load(Ordering::Relaxed))
            .collect(),
        history,
    }
}

/// Recovers the crashed device and applies both oracles.
fn check_mt_recovery(
    nvm: &Arc<Nvm>,
    cfg: &DudeTmConfig,
    workload: Workload,
    run: &MtRun,
    ops: u64,
    label: &str,
) {
    let (layout, report) = recover_device(nvm, cfg).expect("recovery");
    // Durability: every acknowledged transaction survives.
    assert!(
        report.last_tid >= run.acked_tid,
        "{label}: acknowledged tid {} lost (recovered to {})",
        run.acked_tid,
        report.last_tid
    );
    // Durable linearizability: the heap is the replay of exactly the
    // prefix 1..=last_tid of the recorded history.
    let entries = run.history.entries();
    if let Err(e) = check_prefix(&entries, run.history.dropped(), report.last_tid, |addr| {
        nvm.read_word(layout.heap.start() + addr)
    }) {
        panic!("{label}: durable linearizability violated: {e}");
    }
    // Independent application invariants.
    match workload {
        Workload::Bank => {
            if report.last_tid >= 1 {
                let total: u64 = (0..ACCOUNTS)
                    .map(|i| nvm.read_word(layout.heap.start() + slot(i).offset()))
                    .sum();
                assert_eq!(
                    total,
                    ACCOUNTS * INITIAL,
                    "{label}: money not conserved after recovery to {}",
                    report.last_tid
                );
            }
        }
        Workload::Counters => {
            for (w, &acked) in run.acked_incr.iter().enumerate() {
                let v = nvm.read_word(layout.heap.start() + slot(w as u64).offset());
                assert!(
                    v >= acked,
                    "{label}: thread {w} counter regressed below acknowledged \
                     progress ({v} < {acked})"
                );
                assert!(
                    v <= ops,
                    "{label}: thread {w} counter beyond committed total ({v} > {ops})"
                );
            }
        }
    }
}

struct Combo {
    name: &'static str,
    cfg: DudeTmConfig,
    workload: Workload,
    threads: usize,
    ops: u64,
}

/// For each seed: one counting pass, then a stride-sampled sweep over the
/// event class with a crash armed at each sampled index. Sweeps one stride
/// past the count: thread interleaving makes per-run event totals wobble,
/// and an index beyond the run's actual count must degrade to a clean
/// no-crash round, never an error. Returns (rounds, rounds that tripped).
fn sweep_mt(
    combo: &Combo,
    event: CrashEventKind,
    stage: StageFilter,
    torn: bool,
    max_points: u64,
) -> (u64, u64) {
    let mut rounds = 0u64;
    let mut tripped = 0u64;
    for seed in seeds() {
        let nvm = fresh_nvm();
        run_mt(
            &nvm,
            combo.cfg,
            combo.workload,
            combo.threads,
            combo.ops,
            seed,
            None,
        );
        let events = nvm.persistence_events().count(event, stage);
        assert!(
            events > 0,
            "{}: workload emits no {event:?}/{stage:?} events",
            combo.name
        );
        let stride = (events / max_points).max(1);
        let mut i = 1;
        while i <= events + stride {
            let mut plan = CrashPlan::at_nth(event, i).for_stage(stage);
            if torn {
                plan = plan.with_torn_line(seed ^ i);
            }
            let nvm = fresh_nvm();
            let run = run_mt(
                &nvm,
                combo.cfg,
                combo.workload,
                combo.threads,
                combo.ops,
                seed,
                Some(plan),
            );
            if nvm.apply_planned_crash() {
                tripped += 1;
            }
            let label = format!(
                "{} seed {seed} {event:?}/{stage:?} torn={torn} crash point {i}",
                combo.name
            );
            check_mt_recovery(&nvm, &combo.cfg, combo.workload, &run, combo.ops, &label);
            rounds += 1;
            i += stride;
        }
    }
    (rounds, tripped)
}

const ASYNC: DurabilityMode = DurabilityMode::Async { buffer_txns: 16 };

fn assert_sweep(name: &str, (rounds, tripped): (u64, u64), min_rounds: u64) {
    assert!(
        rounds >= min_rounds,
        "{name}: only {rounds} crash points (expected >= {min_rounds})"
    );
    assert!(
        tripped >= rounds / 3,
        "{name}: only {tripped}/{rounds} plans tripped"
    );
}

#[test]
fn mt_sweep_async_baseline() {
    let combo = Combo {
        name: "async pt=1 pg=1 rt=1",
        cfg: cfg(ASYNC, 1, 1, false, 1),
        workload: Workload::Bank,
        threads: 4,
        ops: 12,
    };
    assert_sweep(
        combo.name,
        sweep_mt(
            &combo,
            CrashEventKind::Flush,
            StageFilter::Background,
            false,
            20,
        ),
        30,
    );
    assert_sweep(
        combo.name,
        sweep_mt(&combo, CrashEventKind::Fence, StageFilter::Any, true, 20),
        20,
    );
}

#[test]
fn mt_sweep_async_two_persist_threads() {
    let combo = Combo {
        name: "async pt=2 pg=1 rt=1",
        cfg: cfg(ASYNC, 2, 1, false, 1),
        workload: Workload::Bank,
        threads: 4,
        ops: 12,
    };
    assert_sweep(
        combo.name,
        sweep_mt(
            &combo,
            CrashEventKind::Flush,
            StageFilter::Background,
            false,
            20,
        ),
        30,
    );
    assert_sweep(
        combo.name,
        sweep_mt(
            &combo,
            CrashEventKind::Write,
            StageFilter::Background,
            false,
            20,
        ),
        30,
    );
}

#[test]
fn mt_sweep_async_sharded_reproduce() {
    let combo = Combo {
        name: "async pt=2 pg=1 rt=4",
        cfg: cfg(ASYNC, 2, 1, false, 4),
        workload: Workload::Bank,
        threads: 8,
        ops: 10,
    };
    assert_sweep(
        combo.name,
        sweep_mt(
            &combo,
            CrashEventKind::Flush,
            StageFilter::Background,
            false,
            20,
        ),
        30,
    );
    assert_sweep(
        combo.name,
        sweep_mt(&combo, CrashEventKind::Flush, StageFilter::Any, true, 20),
        30,
    );
}

#[test]
fn mt_sweep_grouped() {
    let combo = Combo {
        name: "async pt=1 pg=8 rt=1",
        cfg: cfg(ASYNC, 1, 8, false, 1),
        workload: Workload::Bank,
        threads: 4,
        ops: 12,
    };
    assert_sweep(
        combo.name,
        sweep_mt(
            &combo,
            CrashEventKind::Flush,
            StageFilter::Background,
            false,
            20,
        ),
        20,
    );
    assert_sweep(
        combo.name,
        sweep_mt(
            &combo,
            CrashEventKind::Fence,
            StageFilter::Background,
            false,
            20,
        ),
        10,
    );
}

#[test]
fn mt_sweep_grouped_compressed_sharded() {
    let combo = Combo {
        name: "async pt=1 pg=8+lz rt=4",
        cfg: cfg(ASYNC, 1, 8, true, 4),
        workload: Workload::Bank,
        threads: 4,
        ops: 12,
    };
    assert_sweep(
        combo.name,
        sweep_mt(&combo, CrashEventKind::Flush, StageFilter::Any, true, 20),
        30,
    );
    assert_sweep(
        combo.name,
        sweep_mt(
            &combo,
            CrashEventKind::Write,
            StageFilter::Background,
            false,
            20,
        ),
        30,
    );
}

/// Two parallel flush workers on the grouped path: groups fence out of
/// order on two rings, but the oracle must still see exact contiguous TID
/// prefixes — the in-order publication gate is what's under test here.
#[test]
fn mt_sweep_grouped_two_flush_workers() {
    let combo = Combo {
        name: "async pt=seq pg=8 fw=2 rt=1",
        cfg: cfg_fw(ASYNC, 8, false, 1, 2),
        workload: Workload::Bank,
        threads: 4,
        ops: 12,
    };
    assert_sweep(
        combo.name,
        sweep_mt(
            &combo,
            CrashEventKind::Flush,
            StageFilter::Background,
            false,
            20,
        ),
        20,
    );
    assert_sweep(
        combo.name,
        sweep_mt(&combo, CrashEventKind::Fence, StageFilter::Any, true, 20),
        10,
    );
}

/// Four flush workers + compression + sharded Reproduce: the full
/// parallel-Persist feature stack under the nastiest crash classes.
#[test]
fn mt_sweep_grouped_compressed_four_flush_workers_sharded() {
    let combo = Combo {
        name: "async pt=seq pg=8+lz fw=4 rt=4",
        cfg: cfg_fw(ASYNC, 8, true, 4, 4),
        workload: Workload::Bank,
        threads: 4,
        ops: 12,
    };
    assert_sweep(
        combo.name,
        sweep_mt(&combo, CrashEventKind::Flush, StageFilter::Any, true, 20),
        20,
    );
    assert_sweep(
        combo.name,
        sweep_mt(
            &combo,
            CrashEventKind::Write,
            StageFilter::Background,
            false,
            20,
        ),
        20,
    );
}

#[test]
fn mt_sweep_sync() {
    let combo = Combo {
        name: "sync rt=1",
        cfg: cfg(DurabilityMode::Sync, 1, 1, false, 1),
        workload: Workload::Bank,
        threads: 2,
        ops: 16,
    };
    assert_sweep(
        combo.name,
        sweep_mt(
            &combo,
            CrashEventKind::Flush,
            StageFilter::Foreground,
            false,
            20,
        ),
        30,
    );
    assert_sweep(
        combo.name,
        sweep_mt(&combo, CrashEventKind::Fence, StageFilter::Any, true, 20),
        30,
    );
}

#[test]
fn mt_sweep_sync_sharded_counters() {
    let combo = Combo {
        name: "sync rt=4 counters",
        cfg: cfg(DurabilityMode::Sync, 1, 1, false, 4),
        workload: Workload::Counters,
        threads: 4,
        ops: 16,
    };
    assert_sweep(
        combo.name,
        sweep_mt(
            &combo,
            CrashEventKind::Write,
            StageFilter::Background,
            false,
            20,
        ),
        30,
    );
    assert_sweep(
        combo.name,
        sweep_mt(&combo, CrashEventKind::Flush, StageFilter::Any, false, 20),
        30,
    );
}

/// Tiny per-thread log rings force the Persist stage through the
/// parked-record path (ring full → park → retry after Reproduce recycles
/// a span), so crashes here land mid-recycling: some spans wiped, some
/// still holding records below the checkpoint. Exercises the
/// stale-run-skipping branch of recovery under concurrency.
#[test]
fn mt_sweep_tiny_plog_parked_records() {
    let combo = Combo {
        name: "async tiny-plog pt=1 pg=1 rt=1",
        cfg: DudeTmConfig {
            plog_bytes_per_thread: 4096,
            checkpoint_every: 4,
            ..cfg(ASYNC, 1, 1, false, 1)
        },
        workload: Workload::Bank,
        // 64 commits x 64-byte records per thread overfills the 4 KiB
        // ring, so Persist must wait for Reproduce to recycle spans.
        threads: 4,
        ops: 64,
    };
    assert_sweep(
        combo.name,
        sweep_mt(
            &combo,
            CrashEventKind::Flush,
            StageFilter::Background,
            false,
            20,
        ),
        30,
    );
    assert_sweep(
        combo.name,
        sweep_mt(&combo, CrashEventKind::Fence, StageFilter::Any, true, 20),
        30,
    );
}

#[test]
fn mt_sweep_unbounded_counters() {
    let combo = Combo {
        name: "async-inf rt=1 counters x8",
        cfg: cfg(DurabilityMode::AsyncUnbounded, 1, 1, false, 1),
        workload: Workload::Counters,
        threads: 8,
        ops: 12,
    };
    assert_sweep(
        combo.name,
        sweep_mt(
            &combo,
            CrashEventKind::Flush,
            StageFilter::Background,
            false,
            20,
        ),
        30,
    );
    assert_sweep(
        combo.name,
        sweep_mt(&combo, CrashEventKind::Flush, StageFilter::Any, true, 20),
        30,
    );
}
