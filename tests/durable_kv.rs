//! Full-stack durability: a B+-tree KV store on DudeTM survives a crash
//! with exactly the acknowledged prefix of its history, including with a
//! demand-paged shadow memory.

use std::sync::Arc;

use dude_nvm::{Nvm, NvmConfig};
use dude_txapi::{PAddr, TxnSystem, TxnThread};
use dude_workloads::btree::BTree;
use dudetm::{DudeTm, DudeTmConfig, DurabilityMode, PagingMode, ShadowConfig};

fn cfg() -> DudeTmConfig {
    DudeTmConfig {
        max_threads: 4,
        plog_bytes_per_thread: 1 << 18,
        ..DudeTmConfig::small(2 << 20)
    }
}

/// Inserts keys one transaction each, acknowledging every one; after a
/// crash, the recovered tree contains exactly the inserted mappings.
#[test]
fn btree_contents_survive_crash() {
    let nvm = Arc::new(Nvm::new(NvmConfig::for_testing(8 << 20)));
    let tree = BTree::new(PAddr::new(64), 4096);
    let n = 300u64;
    {
        let dude = DudeTm::create_stm(Arc::clone(&nvm), cfg());
        let mut t = dude.register_thread();
        let mut last = 0;
        for k in 0..n {
            let out = t.run(&mut |tx| tree.insert(tx, k * 7 % n, k));
            last = out.info().unwrap().tid.unwrap();
        }
        t.wait_durable(last);
        drop(t);
        nvm.crash();
        std::mem::forget(dude);
    }
    let (dude2, report) = DudeTm::recover_stm(Arc::clone(&nvm), cfg()).unwrap();
    assert_eq!(report.last_tid, n, "all acknowledged inserts recovered");
    let mut t = dude2.register_thread();
    // Model: key (k*7 % n) → latest k that produced it.
    let mut model = std::collections::HashMap::new();
    for k in 0..n {
        model.insert(k * 7 % n, k);
    }
    for (key, val) in model {
        let got = t.run(&mut |tx| tree.get(tx, key)).expect_committed();
        assert_eq!(got, Some(val), "key {key}");
    }
}

/// Same flow with a paged shadow: after recovery the (cold) shadow pages
/// fault in from the recovered NVM image.
#[test]
fn paged_shadow_recovers_from_nvm() {
    let nvm = Arc::new(Nvm::new(NvmConfig::for_testing(8 << 20)));
    let config = cfg().with_shadow(ShadowConfig::Paged {
        frames: 16,
        mode: PagingMode::Software,
    });
    let pages = 64u64;
    {
        let dude = DudeTm::create_stm(Arc::clone(&nvm), config);
        let mut t = dude.register_thread();
        let mut last = 0;
        for p in 0..pages {
            let out = t.run(&mut |tx| tx.write_word(PAddr::new(p * dudetm::PAGE_BYTES), p + 1));
            last = out.info().unwrap().tid.unwrap();
        }
        t.wait_durable(last);
        drop(t);
        nvm.crash();
        std::mem::forget(dude);
    }
    let (dude2, report) = DudeTm::recover_stm(Arc::clone(&nvm), config).unwrap();
    assert_eq!(report.last_tid, pages);
    let mut t = dude2.register_thread();
    for p in 0..pages {
        let v = t
            .run(&mut |tx| tx.read_word(PAddr::new(p * dudetm::PAGE_BYTES)))
            .expect_committed();
        assert_eq!(v, p + 1, "page {p}");
    }
    assert!(dude2.shadow_stats().swap_ins >= 16);
}

/// Sync-mode KV store: every committed transaction is durable without
/// explicit acknowledgement.
#[test]
fn sync_mode_kv_survives_without_acks() {
    let nvm = Arc::new(Nvm::new(NvmConfig::for_testing(8 << 20)));
    let config = cfg().with_durability(DurabilityMode::Sync);
    let tree = BTree::new(PAddr::new(64), 2048);
    {
        let dude = DudeTm::create_stm(Arc::clone(&nvm), config);
        let mut t = dude.register_thread();
        for k in 0..100u64 {
            t.run(&mut |tx| tree.insert(tx, k, k * k))
                .expect_committed();
        }
        drop(t);
        nvm.crash();
        std::mem::forget(dude);
    }
    let (dude2, report) = DudeTm::recover_stm(Arc::clone(&nvm), config).unwrap();
    assert_eq!(report.last_tid, 100);
    let mut t = dude2.register_thread();
    for k in 0..100u64 {
        assert_eq!(
            t.run(&mut |tx| tree.get(tx, k)).expect_committed(),
            Some(k * k)
        );
    }
}
