//! Exhaustive deterministic crash-point sweep across the whole stack.
//!
//! `tests/crash_consistency.rs` samples crash points with wall-clock timing;
//! this suite *enumerates* them. A counting pass runs a fixed bank workload
//! once and reads the device's persistence-event tallies
//! ([`Nvm::persistence_events`]); the sweep then re-runs the identical
//! workload once per event index with a [`CrashPlan`] armed to simulate a
//! power failure at exactly that flush, fence, or store — foreground and
//! background stages, strict and torn-cache-line outcomes — recovers with
//! [`recover_device`], and checks the same four invariants:
//!
//! 1. **Durability** — every transaction acknowledged durable before the
//!    crash instant survives it.
//! 2. **Atomicity** — recovered state never contains a torn transaction.
//! 3. **Consistency** — the bank total is conserved after recovery.
//! 4. **Prefix semantics** — the recovered state equals the replay of a
//!    contiguous prefix of the committed transaction sequence.
//!
//! The workload runs on a single Perform thread, so the committed sequence
//! (and therefore the expected state after every prefix) is identical in
//! every run; only the crash point moves. Across the sweeps below, well over
//! 200 distinct crash points are exercised (each test asserts its share).

use std::sync::Arc;

use dude_nvm::{CrashEventKind, CrashPlan, Nvm, NvmConfig, StageFilter};
use dude_txapi::{PAddr, TxnSystem, TxnThread};
use dudetm::{recover_device, DudeTm, DudeTmConfig, DurabilityMode};

const ACCOUNTS: u64 = 16;
const INITIAL: u64 = 100;
const TRANSFERS: u64 = 50;
const SEED: u64 = 0x5EED_CAFE;

fn slot(i: u64) -> PAddr {
    PAddr::from_word_index(8 + i)
}

fn config(mode: DurabilityMode) -> DudeTmConfig {
    DudeTmConfig {
        max_threads: 2,
        plog_bytes_per_thread: 1 << 16,
        checkpoint_every: 8,
        ..DudeTmConfig::small(1 << 16)
    }
    .with_durability(mode)
}

fn fresh_nvm() -> Arc<Nvm> {
    Arc::new(Nvm::new(NvmConfig::for_testing(1 << 18)))
}

/// Advances the LCG until it yields a transfer between distinct accounts.
fn next_pair(mut x: u64) -> (u64, u64, u64) {
    loop {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
        let a = (x >> 33) % ACCOUNTS;
        let b = (x >> 13) % ACCOUNTS;
        if a != b {
            return (a, b, x);
        }
    }
}

/// Simulated balances after each transaction ID: `states[k]` is the heap
/// content a correct recovery to `last_tid == k` must produce. Tid 0 is the
/// unformatted heap, tid 1 the seed transaction, tids 2..=TRANSFERS+1 the
/// transfers.
fn expected_states() -> Vec<Vec<u64>> {
    let mut states = vec![vec![0u64; ACCOUNTS as usize]];
    let mut bal = vec![INITIAL; ACCOUNTS as usize];
    states.push(bal.clone());
    let mut x = SEED;
    for _ in 0..TRANSFERS {
        let (a, b, nx) = next_pair(x);
        x = nx;
        bal[a as usize] -= 1;
        bal[b as usize] += 1;
        states.push(bal.clone());
    }
    states
}

/// Runs the deterministic bank workload to clean shutdown. With a plan
/// armed, the crash image freezes mid-run while the live threads keep going
/// (the emulator never wedges the pipeline); acknowledgements recorded after
/// the trip belong to the post-crash timeline and are excluded from the
/// durability bar. Returns the highest transaction ID acknowledged durable
/// strictly before the crash instant.
fn run_bank(nvm: &Arc<Nvm>, cfg: DudeTmConfig, plan: Option<CrashPlan>) -> u64 {
    let dude = DudeTm::create_stm(Arc::clone(nvm), cfg);
    match plan {
        Some(p) => nvm.arm_crash_plan(p),
        // Counting pass: exclude formatting, like the armed runs do.
        None => nvm.reset_persistence_events(),
    }
    let mut acked = 0u64;
    {
        let mut t = dude.register_thread();
        t.run(&mut |tx| {
            for i in 0..ACCOUNTS {
                tx.write_word(slot(i), INITIAL)?;
            }
            Ok(())
        })
        .expect_committed();
        let mut x = SEED;
        for op in 0..TRANSFERS {
            let (a, b, nx) = next_pair(x);
            x = nx;
            let out = t.run(&mut |tx| {
                let va = tx.read_word(slot(a))?;
                tx.write_word(slot(a), va - 1)?;
                let vb = tx.read_word(slot(b))?;
                tx.write_word(slot(b), vb + 1)
            });
            let tid = out
                .info()
                .expect("single-threaded transfer commits")
                .tid
                .unwrap();
            if op % 10 == 9 {
                t.wait_durable(tid);
                // `wait_durable` returned before the trip was observed, so
                // the covering fence completed before the crash instant.
                if !nvm.crash_plan_tripped() {
                    acked = acked.max(tid);
                }
            }
        }
    }
    drop(dude);
    acked
}

/// Recovers the device and checks the four invariants against the
/// simulated prefix states.
fn check_recovery(
    nvm: &Arc<Nvm>,
    cfg: &DudeTmConfig,
    acked: u64,
    states: &[Vec<u64>],
    label: &str,
) {
    let (layout, report) = recover_device(nvm, cfg).expect("recovery");
    // 1. Durability: acknowledged transactions survive.
    assert!(
        report.last_tid >= acked,
        "{label}: acknowledged tid {acked} lost (recovered to {})",
        report.last_tid
    );
    let l = report.last_tid as usize;
    assert!(
        l < states.len(),
        "{label}: recovered past the committed sequence ({l})"
    );
    let bal: Vec<u64> = (0..ACCOUNTS)
        .map(|i| nvm.read_word(layout.heap.start() + slot(i).offset()))
        .collect();
    // 2 + 4. Atomicity and prefix semantics: the heap is *exactly* the
    // replay of transactions 1..=last_tid — no torn transaction, nothing
    // from beyond the prefix, nothing missing inside it.
    assert_eq!(
        bal, states[l],
        "{label}: recovered state is not the replay of prefix 1..={l}"
    );
    // 3. Consistency: the application invariant holds.
    if l >= 1 {
        assert_eq!(
            bal.iter().sum::<u64>(),
            ACCOUNTS * INITIAL,
            "{label}: money not conserved"
        );
    }
}

/// Counts this class's events in a crash-free run, then crashes at every
/// `stride`-th index (stride chosen so at most ~`max_points` rounds run) and
/// verifies recovery each time. Returns (rounds, rounds that tripped).
fn sweep(
    cfg: DudeTmConfig,
    event: CrashEventKind,
    stage: StageFilter,
    torn: bool,
    max_points: u64,
) -> (u64, u64) {
    let states = expected_states();
    let nvm = fresh_nvm();
    run_bank(&nvm, cfg, None);
    let events = nvm.persistence_events().count(event, stage);
    assert!(events > 0, "workload emits no {event:?}/{stage:?} events");
    let stride = (events / max_points).max(1);
    let mut rounds = 0u64;
    let mut tripped = 0u64;
    // Sweep one stride past the count: background batching makes per-run
    // event totals wobble, and an index beyond the run's actual count must
    // degrade to a clean no-crash run, never an error.
    let mut i = 1;
    while i <= events + stride {
        let mut plan = CrashPlan::at_nth(event, i).for_stage(stage);
        if torn {
            plan = plan.with_torn_line(SEED ^ i);
        }
        let nvm = fresh_nvm();
        let acked = run_bank(&nvm, cfg, Some(plan));
        if nvm.apply_planned_crash() {
            tripped += 1;
        }
        let label = format!("{event:?}/{stage:?} torn={torn} crash point {i}");
        check_recovery(&nvm, &cfg, acked, &states, &label);
        rounds += 1;
        i += stride;
    }
    (rounds, tripped)
}

const ASYNC: DurabilityMode = DurabilityMode::Async { buffer_txns: 64 };

#[test]
fn sweep_async_background_flushes() {
    let (rounds, tripped) = sweep(
        config(ASYNC),
        CrashEventKind::Flush,
        StageFilter::Background,
        false,
        120,
    );
    assert!(rounds >= 80, "only {rounds} background-flush crash points");
    assert!(
        tripped >= rounds / 2,
        "only {tripped}/{rounds} plans tripped"
    );
}

#[test]
fn sweep_async_background_fences() {
    let (rounds, tripped) = sweep(
        config(ASYNC),
        CrashEventKind::Fence,
        StageFilter::Background,
        false,
        60,
    );
    assert!(rounds >= 5, "only {rounds} background-fence crash points");
    assert!(
        tripped >= rounds / 2,
        "only {tripped}/{rounds} plans tripped"
    );
}

#[test]
fn sweep_async_background_writes() {
    // Stores are the densest event class; stride-sample them.
    let (rounds, tripped) = sweep(
        config(ASYNC),
        CrashEventKind::Write,
        StageFilter::Background,
        false,
        40,
    );
    assert!(rounds >= 30, "only {rounds} background-write crash points");
    assert!(
        tripped >= rounds / 2,
        "only {tripped}/{rounds} plans tripped"
    );
}

#[test]
fn sweep_async_torn_cacheline() {
    let (rounds, tripped) = sweep(
        config(ASYNC),
        CrashEventKind::Flush,
        StageFilter::Any,
        true,
        50,
    );
    assert!(rounds >= 40, "only {rounds} torn-line crash points");
    assert!(
        tripped >= rounds / 2,
        "only {tripped}/{rounds} plans tripped"
    );
}

#[test]
fn sweep_sync_foreground_flushes() {
    let (rounds, tripped) = sweep(
        config(DurabilityMode::Sync),
        CrashEventKind::Flush,
        StageFilter::Foreground,
        false,
        60,
    );
    assert!(rounds >= 40, "only {rounds} foreground-flush crash points");
    assert!(
        tripped >= rounds / 2,
        "only {tripped}/{rounds} plans tripped"
    );
}

#[test]
fn sweep_sync_foreground_fences_torn() {
    let (rounds, tripped) = sweep(
        config(DurabilityMode::Sync),
        CrashEventKind::Fence,
        StageFilter::Foreground,
        true,
        40,
    );
    assert!(
        rounds >= 20,
        "only {rounds} torn foreground-fence crash points"
    );
    assert!(
        tripped >= rounds / 2,
        "only {tripped}/{rounds} plans tripped"
    );
}

// ---- Sharded Reproduce (`reproduce_threads = 4`) ------------------------
//
// The same four invariants under the conflict-sharded Reproduce stage. The
// prefix oracle is the frontier invariant made observable: the checkpoint
// is the *minimum* completed TID across shards, every shard ahead of it
// still has its log records unreleased, so recovery replays the run
// spanning the checkpoint and lands exactly on a committed prefix — a
// shard can never be durably ahead of what the checkpoint can repair.

fn sharded(mode: DurabilityMode) -> DudeTmConfig {
    config(mode).with_reproduce_threads(4)
}

#[test]
fn sweep_sharded_background_flushes() {
    let (rounds, tripped) = sweep(
        sharded(ASYNC),
        CrashEventKind::Flush,
        StageFilter::Background,
        false,
        60,
    );
    assert!(
        rounds >= 40,
        "only {rounds} sharded background-flush points"
    );
    assert!(
        tripped >= rounds / 2,
        "only {tripped}/{rounds} plans tripped"
    );
}

#[test]
fn sweep_sharded_background_fences() {
    // Shard workers fence independently, so this class now has events from
    // N + 1 background threads (workers + router checkpoint).
    let (rounds, tripped) = sweep(
        sharded(ASYNC),
        CrashEventKind::Fence,
        StageFilter::Background,
        false,
        40,
    );
    assert!(rounds >= 5, "only {rounds} sharded background-fence points");
    assert!(
        tripped >= rounds / 2,
        "only {tripped}/{rounds} plans tripped"
    );
}

#[test]
fn sweep_sharded_torn_cacheline() {
    let (rounds, tripped) = sweep(
        sharded(ASYNC),
        CrashEventKind::Flush,
        StageFilter::Any,
        true,
        40,
    );
    assert!(rounds >= 30, "only {rounds} sharded torn-line points");
    assert!(
        tripped >= rounds / 2,
        "only {tripped}/{rounds} plans tripped"
    );
}

#[test]
fn sweep_sharded_sync_mode_writes() {
    // Sync durability feeds batches straight into the router; sweep the
    // densest event class through that path too.
    let (rounds, tripped) = sweep(
        sharded(DurabilityMode::Sync),
        CrashEventKind::Write,
        StageFilter::Background,
        false,
        40,
    );
    assert!(rounds >= 30, "only {rounds} sharded sync-write points");
    assert!(
        tripped >= rounds / 2,
        "only {tripped}/{rounds} plans tripped"
    );
}

// ---- Observability layer under crash sweep ------------------------------
//
// The trace layer's zero-behavior-change contract, proven at the hardest
// boundary: with recording enabled (histograms, stall counters, the event
// ring all live), every swept crash point must recover to exactly the same
// committed prefix the untraced sweeps establish. Recording adds clock
// reads and atomics around the persist barrier and the replay loops; none
// of that may reorder or add a single durable store.

#[test]
fn sweep_traced_background_flushes() {
    let cfg = config(ASYNC).with_trace(dudetm::TraceConfig::enabled(4096));
    let (rounds, tripped) = sweep(
        cfg,
        CrashEventKind::Flush,
        StageFilter::Background,
        false,
        60,
    );
    assert!(rounds >= 40, "only {rounds} traced background-flush points");
    assert!(
        tripped >= rounds / 2,
        "only {tripped}/{rounds} plans tripped"
    );
}

#[test]
fn sweep_traced_sharded_torn_cacheline() {
    // Tracing + sharded Reproduce + torn lines: the layer's recording sites
    // in the shard workers and the router drain loop under the nastiest
    // crash class.
    let cfg = sharded(ASYNC).with_trace(dudetm::TraceConfig::enabled(4096));
    let (rounds, tripped) = sweep(cfg, CrashEventKind::Flush, StageFilter::Any, true, 40);
    assert!(rounds >= 30, "only {rounds} traced sharded torn points");
    assert!(
        tripped >= rounds / 2,
        "only {tripped}/{rounds} plans tripped"
    );
}

// ---- Log combination (`persist_group = 8`, §3.3) -------------------------
//
// Grouped Persist rewrites history's unit of atomicity: one ring record
// now covers up to eight transactions (combined, optionally compressed),
// appended with a single fence. The prefix invariant must hold at group
// granularity — a crash can only ever add or drop *whole groups*, and a
// group made unreadable by a torn cache line must be discarded whole, never
// replayed partially. `check_recovery` enforces exactly that: the recovered
// balances must match some per-transaction prefix state, which a
// half-applied group cannot produce.

fn grouped(compress: bool) -> DudeTmConfig {
    config(ASYNC).with_grouping(8, compress)
}

#[test]
fn sweep_grouped_background_flushes() {
    let (rounds, tripped) = sweep(
        grouped(false),
        CrashEventKind::Flush,
        StageFilter::Background,
        false,
        60,
    );
    assert!(
        rounds >= 15,
        "only {rounds} grouped background-flush points"
    );
    assert!(
        tripped >= rounds / 2,
        "only {tripped}/{rounds} plans tripped"
    );
}

#[test]
fn sweep_grouped_background_fences() {
    // One fence per group append (that is the point of combination), plus
    // checkpoint fences: a much sparser class than ungrouped persist.
    let (rounds, tripped) = sweep(
        grouped(false),
        CrashEventKind::Fence,
        StageFilter::Background,
        false,
        60,
    );
    assert!(rounds >= 5, "only {rounds} grouped background-fence points");
    assert!(
        tripped >= rounds / 2,
        "only {tripped}/{rounds} plans tripped"
    );
}

#[test]
fn sweep_grouped_torn_cacheline() {
    let (rounds, tripped) = sweep(
        grouped(false),
        CrashEventKind::Flush,
        StageFilter::Any,
        true,
        50,
    );
    assert!(rounds >= 15, "only {rounds} grouped torn-line crash points");
    assert!(
        tripped >= rounds / 2,
        "only {tripped}/{rounds} plans tripped"
    );
}

#[test]
fn sweep_grouped_compressed_torn_cacheline() {
    // A torn line inside a compressed group corrupts an encoding the
    // replayer cannot even partially decode; the record checksum must
    // reject it and recovery must drop the whole group (falling back to
    // the previous group boundary), never apply a half-group.
    let (rounds, tripped) = sweep(
        grouped(true),
        CrashEventKind::Flush,
        StageFilter::Any,
        true,
        50,
    );
    assert!(
        rounds >= 15,
        "only {rounds} compressed-group torn crash points"
    );
    assert!(
        tripped >= rounds / 2,
        "only {tripped}/{rounds} plans tripped"
    );
}

#[test]
fn sweep_grouped_compressed_background_writes() {
    let (rounds, tripped) = sweep(
        grouped(true),
        CrashEventKind::Write,
        StageFilter::Background,
        false,
        40,
    );
    assert!(
        rounds >= 15,
        "only {rounds} compressed-group background-write points"
    );
    assert!(
        tripped >= rounds / 2,
        "only {tripped}/{rounds} plans tripped"
    );
}

// ---- Parallel grouped Persist (`persist_flush_workers` ∈ {2, 4}) ---------
//
// The sequencer/flush-worker split spreads group records round-robin over
// one ring per worker and fences them out of order; only *publication*
// (durable watermark + hand-off to Reproduce) is in order. The prefix
// invariant is therefore load-bearing in a new way: a crash amid N
// in-flight group flushes may persist groups beyond a gap, and recovery
// must discard every group past the first missing one — across rings —
// or the recovered balances cannot match any per-transaction prefix state.

fn grouped_mw(compress: bool, workers: usize) -> DudeTmConfig {
    DudeTmConfig {
        max_threads: 4,
        plog_bytes_per_thread: 1 << 14,
        checkpoint_every: 8,
        ..DudeTmConfig::small(1 << 16)
    }
    .with_durability(ASYNC)
    .with_grouping(8, compress)
    .with_flush_workers(workers)
}

#[test]
fn sweep_grouped_two_flush_workers_background_flushes() {
    let (rounds, tripped) = sweep(
        grouped_mw(false, 2),
        CrashEventKind::Flush,
        StageFilter::Background,
        false,
        60,
    );
    assert!(rounds >= 15, "only {rounds} 2-worker grouped flush points");
    assert!(
        tripped >= rounds / 2,
        "only {tripped}/{rounds} plans tripped"
    );
}

#[test]
fn sweep_grouped_two_flush_workers_compressed_torn() {
    // Torn line inside a compressed group on either worker's ring: the
    // checksum rejects it and recovery drops the whole group plus every
    // group beyond it, even those another worker fenced first.
    let (rounds, tripped) = sweep(
        grouped_mw(true, 2),
        CrashEventKind::Flush,
        StageFilter::Any,
        true,
        50,
    );
    assert!(
        rounds >= 15,
        "only {rounds} 2-worker compressed torn points"
    );
    assert!(
        tripped >= rounds / 2,
        "only {tripped}/{rounds} plans tripped"
    );
}

#[test]
fn sweep_grouped_four_flush_workers_compressed_flushes() {
    let (rounds, tripped) = sweep(
        grouped_mw(true, 4),
        CrashEventKind::Flush,
        StageFilter::Background,
        false,
        60,
    );
    assert!(
        rounds >= 15,
        "only {rounds} 4-worker compressed flush points"
    );
    assert!(
        tripped >= rounds / 2,
        "only {tripped}/{rounds} plans tripped"
    );
}

#[test]
fn sweep_grouped_four_flush_workers_background_fences() {
    // Each worker fences its own ring: the fence class now has events from
    // up to four flush threads plus the checkpoint.
    let (rounds, tripped) = sweep(
        grouped_mw(false, 4),
        CrashEventKind::Fence,
        StageFilter::Background,
        false,
        60,
    );
    assert!(rounds >= 5, "only {rounds} 4-worker fence points");
    assert!(
        tripped >= rounds / 2,
        "only {tripped}/{rounds} plans tripped"
    );
}

/// A swept crash must leave a device the full runtime can restart from, not
/// just one `recover_device` can read: recover with `DudeTm::recover_stm`,
/// check the prefix invariant through the runtime's own heap view, and keep
/// transacting.
#[test]
fn swept_crash_recovers_into_working_runtime() {
    let cfg = config(ASYNC);
    let states = expected_states();
    let nvm = fresh_nvm();
    run_bank(&nvm, cfg, None);
    let fences = nvm
        .persistence_events()
        .count(CrashEventKind::Fence, StageFilter::Any);
    let nvm = fresh_nvm();
    let plan = CrashPlan::at_nth(CrashEventKind::Fence, (fences / 2).max(1));
    let acked = run_bank(&nvm, cfg, Some(plan));
    assert!(nvm.apply_planned_crash(), "mid-run fence plan must trip");

    let (dude, report) = DudeTm::recover_stm(Arc::clone(&nvm), cfg).expect("recovery");
    assert!(report.last_tid >= acked);
    // The recovery-time breakdown is populated: scanning two 64 KiB log
    // regions word-by-word cannot take zero wall time.
    assert!(report.scan_ns > 0, "scan phase unmeasured: {report:?}");
    let l = report.last_tid as usize;
    let heap = dude.heap_region();
    let bal: Vec<u64> = (0..ACCOUNTS)
        .map(|i| nvm.read_word(heap.start() + slot(i).offset()))
        .collect();
    assert_eq!(bal, states[l]);
    // Prefix semantics also mean the restarted history continues the
    // prefix: new IDs come strictly after the recovered one.
    let mut t = dude.register_thread();
    let out = t.run(&mut |tx| {
        let v = tx.read_word(slot(0))?;
        tx.write_word(slot(0), v + 1)
    });
    assert!(out.info().unwrap().tid.unwrap() > report.last_tid);
}
