//! The extended data-structure operations (B+-tree remove/range, hash
//! remove) running on the real systems — including through DudeTM's full
//! pipeline with crash recovery, and on the NVML-like static-transaction
//! baseline.

use std::sync::Arc;

use dude_baselines::{BaselineConfig, NvmlLike};
use dude_nvm::{Nvm, NvmConfig};
use dude_txapi::{PAddr, TxnSystem, TxnThread};
use dude_workloads::btree::BTree;
use dude_workloads::hashtable::HashTable;
use dudetm::{DudeTm, DudeTmConfig};

fn cfg() -> DudeTmConfig {
    DudeTmConfig {
        max_threads: 4,
        ..DudeTmConfig::small(2 << 20)
    }
}

#[test]
fn btree_remove_and_range_through_dudetm() {
    let nvm = Arc::new(Nvm::new(NvmConfig::for_testing(8 << 20)));
    let tree = BTree::new(PAddr::new(64), 4096);
    let dude = DudeTm::create_stm(Arc::clone(&nvm), cfg());
    let mut t = dude.register_thread();
    for k in 0..200u64 {
        t.run(&mut |tx| tree.insert(tx, k, k * 3))
            .expect_committed();
    }
    // Remove every third key, each removal one transaction.
    for k in (0..200u64).step_by(3) {
        let old = t.run(&mut |tx| tree.remove(tx, k)).expect_committed();
        assert_eq!(old, Some(k * 3));
    }
    // Range scan sees exactly the survivors, in order.
    let got = t
        .run(&mut |tx| tree.range(tx, 0, u64::MAX))
        .expect_committed();
    let expect: Vec<(u64, u64)> = (0..200u64)
        .filter(|k| k % 3 != 0)
        .map(|k| (k, k * 3))
        .collect();
    assert_eq!(got, expect);
    drop(t);
    dude.quiesce();
}

#[test]
fn btree_removals_survive_crash() {
    let nvm = Arc::new(Nvm::new(NvmConfig::for_testing(8 << 20)));
    let tree = BTree::new(PAddr::new(64), 2048);
    {
        let dude = DudeTm::create_stm(Arc::clone(&nvm), cfg());
        let mut t = dude.register_thread();
        for k in 0..100u64 {
            t.run(&mut |tx| tree.insert(tx, k, k)).expect_committed();
        }
        let mut last = 0;
        for k in 0..50u64 {
            let out = t.run(&mut |tx| tree.remove(tx, k));
            last = out.info().unwrap().tid.unwrap();
        }
        t.wait_durable(last);
        drop(t);
        nvm.crash();
        std::mem::forget(dude);
    }
    let (dude2, _) = DudeTm::recover_stm(Arc::clone(&nvm), cfg()).unwrap();
    let mut t = dude2.register_thread();
    for k in 0..100u64 {
        let v = t.run(&mut |tx| tree.get(tx, k)).expect_committed();
        assert_eq!(v, (k >= 50).then_some(k), "key {k}");
    }
    let r = t
        .run(&mut |tx| tree.range(tx, 0, u64::MAX))
        .expect_committed();
    assert_eq!(r.len(), 50);
}

#[test]
fn hash_remove_on_nvml_baseline() {
    // declare_write-based removal works on the static-transaction system.
    let nvm = Arc::new(Nvm::new(NvmConfig::for_testing(16 << 20)));
    let sys = NvmlLike::create(Arc::clone(&nvm), BaselineConfig::small(4 << 20));
    let table = HashTable::new(PAddr::new(64), 1024);
    let mut t = sys.register_thread();
    for k in 0..100u64 {
        t.run(&mut |tx| table.insert(tx, k, k + 1))
            .expect_committed();
    }
    for k in (0..100u64).step_by(2) {
        let old = t.run(&mut |tx| table.remove(tx, k)).expect_committed();
        assert_eq!(old, Some(k + 1));
    }
    for k in 0..100u64 {
        let v = t.run(&mut |tx| table.get(tx, k)).expect_committed();
        assert_eq!(v, (k % 2 == 1).then_some(k + 1), "key {k}");
    }
}

#[test]
fn hash_remove_crash_consistency_on_dudetm() {
    let nvm = Arc::new(Nvm::new(NvmConfig::for_testing(8 << 20)));
    let table = HashTable::new(PAddr::new(64), 512);
    {
        let dude = DudeTm::create_stm(Arc::clone(&nvm), cfg());
        let mut t = dude.register_thread();
        for k in 0..64u64 {
            t.run(&mut |tx| table.insert(tx, k, k)).expect_committed();
        }
        let out = t.run(&mut |tx| {
            // One transaction that removes two keys atomically.
            table.remove(tx, 10)?;
            table.remove(tx, 11)?;
            Ok(())
        });
        t.wait_durable(out.info().unwrap().tid.unwrap());
        drop(t);
        nvm.crash();
        std::mem::forget(dude);
    }
    let (dude2, _) = DudeTm::recover_stm(Arc::clone(&nvm), cfg()).unwrap();
    let mut t = dude2.register_thread();
    // Both removals landed (they were one durable transaction).
    assert_eq!(t.run(&mut |tx| table.get(tx, 10)).expect_committed(), None);
    assert_eq!(t.run(&mut |tx| table.get(tx, 11)).expect_committed(), None);
    assert_eq!(
        t.run(&mut |tx| table.get(tx, 12)).expect_committed(),
        Some(12)
    );
}

#[test]
fn tpcc_payment_mix_on_dudetm() {
    use dude_workloads::driver::{load_workload, run_fixed_ops, RunConfig};
    use dude_workloads::kv::BTreeKv;
    use dude_workloads::tpcc::{Tpcc, TpccParams};

    let nvm = Arc::new(Nvm::new(NvmConfig::for_testing(24 << 20)));
    let dude = DudeTm::create_stm(
        Arc::clone(&nvm),
        DudeTmConfig {
            max_threads: 8,
            ..DudeTmConfig::small(8 << 20)
        },
    );
    let mut params = TpccParams::tiny();
    params.payment_pct = 40;
    let tpcc = Tpcc::new(
        BTreeKv::new(PAddr::new(64), 8192),
        PAddr::new(4 << 20),
        params,
        "TPC-C mixed",
    );
    load_workload(&dude, &tpcc);
    let stats = run_fixed_ops(
        &dude,
        &tpcc,
        RunConfig {
            threads: 2,
            ..RunConfig::default()
        },
        200,
    );
    assert_eq!(stats.committed, 400);
    dude.quiesce();
}

#[test]
fn tatp_mixed_reads_and_updates_on_dudetm() {
    use dude_workloads::driver::{load_workload, run_fixed_ops, RunConfig};
    use dude_workloads::kv::HashKv;
    use dude_workloads::tatp::Tatp;

    let nvm = Arc::new(Nvm::new(NvmConfig::for_testing(16 << 20)));
    let dude = DudeTm::create_stm(
        Arc::clone(&nvm),
        DudeTmConfig {
            max_threads: 8,
            ..DudeTmConfig::small(4 << 20)
        },
    );
    let tatp = Tatp::new(
        HashKv::new(PAddr::new(64), 4096),
        PAddr::new(2 << 20),
        300,
        "TATP (hash)",
    )
    .into_mixed(30);
    load_workload(&dude, &tatp);
    let stats = run_fixed_ops(
        &dude,
        &tatp,
        RunConfig {
            threads: 2,
            ..RunConfig::default()
        },
        250,
    );
    assert_eq!(stats.committed, 500);
    dude.quiesce();
}
