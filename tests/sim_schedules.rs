//! Seeded schedule exploration of the whole pipeline under the `dude-sim`
//! virtual scheduler (`--features sim`).
//!
//! Where `tests/crash_sweep_mt.rs` relies on the OS scheduler to produce
//! interleavings, this suite *owns* the schedule: every lock acquisition,
//! channel operation, park and clock read is a yield point of a
//! deterministic scheduler driven by a seeded PRNG, so
//!
//! * every run is replayable — the schedule is a pure function of the
//!   seed, and [`dude_sim::SimReport::trace`] is byte-identical across
//!   replays of the same seed;
//! * a seed sweep explores *schedules*, not wall-clock noise: each seed
//!   also derives its own stay bias and preemption bound
//!   ([`SimConfig::from_seed`]), mixing long uninterrupted runs with
//!   aggressive context-switching;
//! * any failure prints a `DUDE_SIM_SEED=<n>` one-liner; exporting that
//!   variable reruns exactly the failing schedule.
//!
//! Environment knobs:
//!
//! * `DUDE_SIM_SEEDS=a,b,c` — base seeds (default `7,1337,424242`).
//! * `DUDE_SIM_SCHEDULES=n` — derived schedules per base seed per config
//!   (default 8; CI uses the default, overnight runs can use thousands).
//! * `DUDE_SIM_SEED=n` — replay exactly one schedule seed everywhere,
//!   skipping derivation. This is the failure-replay entry point.
//!
//! The two `mutation_*` tests are the sharpness check: each arms one
//! injected ordering bug ([`dudetm::sabotage`]) — a dropped fence in the
//! grouped-Persist publish path, an off-by-one frontier publish in
//! sharded Reproduce — and asserts the seed sweep *catches* it within the
//! default budget. A fuzzer that passes those two mutations but fails a
//! real run is telling the truth.

#![cfg(feature = "sim")]

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use dude_nvm::{CrashEventKind, CrashPlan, Nvm, NvmConfig, StageFilter};
use dude_sim::SimConfig;
use dude_txapi::{PAddr, TxAbort, TxnSystem, TxnThread};
use dudetm::sabotage::{Mutation, MutationGuard};
use dudetm::{check_prefix, recover_device, CommitHistory, DudeTm, DudeTmConfig, DurabilityMode};

const ACCOUNTS: u64 = 8;
const INITIAL: u64 = 100;
const ASYNC: DurabilityMode = DurabilityMode::Async { buffer_txns: 16 };

/// Serializes the tests in this binary. `dude_sim::run` already admits
/// one simulated run at a time process-wide, but the sabotage knobs are
/// process-global: a mutation armed by one test must never leak into a
/// run belonging to another.
static TEST_LOCK: Mutex<()> = Mutex::new(());

fn lock_tests() -> std::sync::MutexGuard<'static, ()> {
    TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn slot(i: u64) -> PAddr {
    PAddr::from_word_index(8 + i)
}

fn fresh_nvm() -> Arc<Nvm> {
    Arc::new(Nvm::new(NvmConfig::for_testing(1 << 20)))
}

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok().map(|s| {
        s.trim()
            .parse()
            .unwrap_or_else(|_| panic!("bad {name} value {s:?}"))
    })
}

fn base_seeds() -> Vec<u64> {
    match std::env::var("DUDE_SIM_SEEDS") {
        Ok(s) => s
            .split(',')
            .map(|t| {
                t.trim()
                    .parse()
                    .unwrap_or_else(|_| panic!("bad DUDE_SIM_SEEDS entry {t:?}"))
            })
            .collect(),
        Err(_) => vec![7, 1337, 424242],
    }
}

/// The seed budget: every base seed expanded into `DUDE_SIM_SCHEDULES`
/// derived schedule seeds — unless `DUDE_SIM_SEED` pins a single one.
fn schedule_seeds() -> Vec<u64> {
    if let Some(s) = env_u64("DUDE_SIM_SEED") {
        return vec![s];
    }
    let per_base = env_u64("DUDE_SIM_SCHEDULES").unwrap_or(8);
    let mut out = Vec::new();
    for base in base_seeds() {
        for i in 0..per_base {
            // i == 0 keeps the base seed itself so CI's fixed seeds are
            // literally among the schedules run.
            out.push(if i == 0 {
                base
            } else {
                splitmix(base ^ (i << 32))
            });
        }
    }
    out
}

/// Panics with the replay one-liner for `seed`. All schedule failures in
/// this suite funnel through here.
fn fail_seed(seed: u64, label: &str, err: &str) -> ! {
    eprintln!("DUDE_SIM_SEED={seed}");
    panic!(
        "schedule failure under seed {seed} [{label}]: {err}\n\
         replay: DUDE_SIM_SEED={seed} cargo test --release --features sim --test sim_schedules"
    );
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Workload {
    /// Conflicting random transfers; commit-time aborts produce wasted
    /// TIDs (abort markers) in the durable sequence.
    Bank,
    /// Per-thread counter words; conflict-free, densely interleaved TIDs.
    Counters,
}

struct Combo {
    name: &'static str,
    cfg: DudeTmConfig,
    workload: Workload,
    threads: usize,
    ops: u64,
}

fn cfg(
    persist_threads: usize,
    persist_group: usize,
    flush_workers: usize,
    compress: bool,
    reproduce_threads: usize,
) -> DudeTmConfig {
    let c = DudeTmConfig {
        max_threads: 10,
        plog_bytes_per_thread: 1 << 16,
        checkpoint_every: 8,
        persist_threads,
        persist_group,
        compress_groups: compress,
        reproduce_threads,
        persist_flush_workers: flush_workers,
        ..DudeTmConfig::small(1 << 16)
    }
    .with_durability(ASYNC);
    c.try_validate().expect("sim matrix combo must be valid");
    c
}

/// What one simulated run observed before any crash instant.
struct SimRun {
    /// Highest TID acknowledged durable strictly before the crash trip.
    acked_tid: u64,
    /// Per-worker increments acknowledged durable (Counters only).
    acked_incr: Vec<u64>,
    history: Arc<CommitHistory>,
    trace: Vec<u8>,
}

/// Runs one workload to clean shutdown inside the virtual scheduler.
/// The whole lifetime of the runtime — formatting, worker spawns, the
/// transactions, `wait_durable` acknowledgements, quiesce-on-drop — runs
/// as simulated tasks; the schedule is a pure function of `seed`.
fn run_sim(
    nvm: &Arc<Nvm>,
    cfg: DudeTmConfig,
    workload: Workload,
    threads: usize,
    ops: u64,
    seed: u64,
    plan: Option<CrashPlan>,
) -> Result<SimRun, String> {
    let history = Arc::new(CommitHistory::new(64 + 16 * threads * ops as usize));
    let nvm_in = Arc::clone(nvm);
    let history_in = Arc::clone(&history);
    let report = dude_sim::run(SimConfig::from_seed(seed), move || {
        let dude = Arc::new(DudeTm::create_stm(Arc::clone(&nvm_in), cfg));
        dude.attach_history(history_in);
        match plan {
            Some(p) => nvm_in.arm_crash_plan(p),
            // Counting pass: exclude formatting, like the armed runs do.
            None => nvm_in.reset_persistence_events(),
        }
        if workload == Workload::Bank {
            // Seed balances as tid 1 so the conserved-sum invariant
            // covers every recovered prefix with last_tid >= 1.
            let mut t = dude.register_thread();
            t.run(&mut |tx| {
                for i in 0..ACCOUNTS {
                    tx.write_word(slot(i), INITIAL)?;
                }
                Ok(())
            })
            .expect_committed();
        }
        let acked_tid = Arc::new(AtomicU64::new(0));
        let acked_incr: Arc<Vec<AtomicU64>> =
            Arc::new((0..threads).map(|_| AtomicU64::new(0)).collect());
        let mut handles = Vec::new();
        for w in 0..threads {
            let dude = Arc::clone(&dude);
            let nvm = Arc::clone(&nvm_in);
            let acked_tid = Arc::clone(&acked_tid);
            let acked_incr = Arc::clone(&acked_incr);
            handles.push(dude_nvm::thread::spawn_named(
                &format!("sim-worker-{w}"),
                move || {
                    let mut t = dude.register_thread();
                    let mut x = seed ^ (w as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                    for op in 0..ops {
                        let committed = match workload {
                            Workload::Bank => {
                                let (a, b) = loop {
                                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                                    let a = (x >> 33) % ACCOUNTS;
                                    let b = (x >> 13) % ACCOUNTS;
                                    if a != b {
                                        break (a, b);
                                    }
                                };
                                let out = t.run(&mut |tx| {
                                    let va = tx.read_word(slot(a))?;
                                    if va == 0 {
                                        return Err(TxAbort::User);
                                    }
                                    tx.write_word(slot(a), va - 1)?;
                                    let vb = tx.read_word(slot(b))?;
                                    tx.write_word(slot(b), vb + 1)
                                });
                                out.info().and_then(|i| i.tid)
                            }
                            Workload::Counters => {
                                let out = t.run(&mut |tx| {
                                    let v = tx.read_word(slot(w as u64))?;
                                    tx.write_word(slot(w as u64), v + 1)
                                });
                                Some(out.info().expect("counter tx commits").tid.unwrap())
                            }
                        };
                        if let Some(tid) = committed {
                            if op % 4 == 3 {
                                t.wait_durable(tid);
                                // `wait_durable` returned before the trip was
                                // observed, so the covering fence completed
                                // before the crash instant.
                                if !nvm.crash_plan_tripped() {
                                    acked_tid.fetch_max(tid, Ordering::Relaxed);
                                    acked_incr[w].fetch_max(op + 1, Ordering::Relaxed);
                                }
                            }
                        }
                    }
                },
            ));
        }
        for h in handles {
            h.join().expect("sim worker panicked");
        }
        let acked = acked_tid.load(Ordering::Relaxed);
        let incr: Vec<u64> = acked_incr
            .iter()
            .map(|a| a.load(Ordering::Relaxed))
            .collect();
        drop(
            Arc::try_unwrap(dude)
                .unwrap_or_else(|_| panic!("workers joined, runtime must be unshared")),
        );
        (acked, incr)
    });
    if let Some(p) = report.panic {
        return Err(format!("simulated run aborted: {p}"));
    }
    let (acked_tid, acked_incr) = report
        .result
        .expect("sim run without panic must carry a result");
    Ok(SimRun {
        acked_tid,
        acked_incr,
        history,
        trace: report.trace,
    })
}

/// Applies the recovery oracles; `Err` carries the violated property so
/// the caller can attach the seed one-liner.
fn check_recovery(
    nvm: &Arc<Nvm>,
    cfg: &DudeTmConfig,
    workload: Workload,
    run: &SimRun,
    ops: u64,
) -> Result<(), String> {
    let (layout, report) =
        recover_device(nvm, cfg).map_err(|e| format!("recovery failed: {e:?}"))?;
    // Durability: every acknowledged transaction survives.
    if report.last_tid < run.acked_tid {
        return Err(format!(
            "acknowledged tid {} lost (recovered to {})",
            run.acked_tid, report.last_tid
        ));
    }
    // Durable linearizability: the heap is the replay of exactly the
    // prefix 1..=last_tid of the history that actually happened.
    let entries = run.history.entries();
    check_prefix(&entries, run.history.dropped(), report.last_tid, |addr| {
        nvm.read_word(layout.heap.start() + addr)
    })
    .map_err(|e| format!("durable linearizability violated: {e}"))?;
    match workload {
        Workload::Bank => {
            if report.last_tid >= 1 {
                let total: u64 = (0..ACCOUNTS)
                    .map(|i| nvm.read_word(layout.heap.start() + slot(i).offset()))
                    .sum();
                if total != ACCOUNTS * INITIAL {
                    return Err(format!(
                        "money not conserved after recovery to {}: {total}",
                        report.last_tid
                    ));
                }
            }
        }
        Workload::Counters => {
            for (w, &acked) in run.acked_incr.iter().enumerate() {
                let v = nvm.read_word(layout.heap.start() + slot(w as u64).offset());
                if v < acked {
                    return Err(format!(
                        "thread {w} counter regressed below acknowledged progress ({v} < {acked})"
                    ));
                }
                if v > ops {
                    return Err(format!(
                        "thread {w} counter beyond committed total ({v} > {ops})"
                    ));
                }
            }
        }
    }
    Ok(())
}

/// One clean run + recovery check under `seed`; returns the run for
/// trace comparison.
fn clean_case(combo: &Combo, seed: u64) -> SimRun {
    let nvm = fresh_nvm();
    let run = run_sim(
        &nvm,
        combo.cfg,
        combo.workload,
        combo.threads,
        combo.ops,
        seed,
        None,
    )
    .unwrap_or_else(|e| fail_seed(seed, combo.name, &e));
    if let Err(e) = check_recovery(&nvm, &combo.cfg, combo.workload, &run, combo.ops) {
        fail_seed(seed, combo.name, &e);
    }
    run
}

/// Armed run: crash at the `n`-th persistence event of the schedule,
/// freeze the image, recover, and apply both oracles.
fn crash_case(combo: &Combo, seed: u64, event: CrashEventKind, n: u64) -> bool {
    let plan = CrashPlan::at_nth(event, n).for_stage(StageFilter::Any);
    let nvm = fresh_nvm();
    let run = run_sim(
        &nvm,
        combo.cfg,
        combo.workload,
        combo.threads,
        combo.ops,
        seed,
        Some(plan),
    )
    .unwrap_or_else(|e| fail_seed(seed, combo.name, &e));
    let tripped = nvm.apply_planned_crash();
    if let Err(e) = check_recovery(&nvm, &combo.cfg, combo.workload, &run, combo.ops) {
        fail_seed(seed, combo.name, &format!("{event:?} crash point {n}: {e}"));
    }
    tripped
}

/// The seed sweep for one config: every schedule seed runs clean, and
/// (when `crash_points > 0`) a stride of planned crashes over the flush
/// timeline of that same schedule.
fn explore(combo: &Combo, crash_points: u64) {
    let _g = lock_tests();
    let mut tripped = 0u64;
    let mut armed = 0u64;
    for seed in schedule_seeds() {
        let clean = clean_case(combo, seed);
        if crash_points == 0 {
            continue;
        }
        // Count this schedule's flush events from the clean pass image.
        let nvm = fresh_nvm();
        let run = run_sim(
            &nvm,
            combo.cfg,
            combo.workload,
            combo.threads,
            combo.ops,
            seed,
            None,
        )
        .unwrap_or_else(|e| fail_seed(seed, combo.name, &e));
        assert_eq!(
            run.trace, clean.trace,
            "{}: counting pass diverged from clean pass under seed {seed}",
            combo.name
        );
        let events = nvm
            .persistence_events()
            .count(CrashEventKind::Flush, StageFilter::Any);
        assert!(
            events > 0,
            "{}: no flush events under seed {seed}",
            combo.name
        );
        let stride = (events / crash_points).max(1);
        let mut i = 1;
        // One stride past the count: an index beyond the run's actual
        // event total must degrade to a clean no-crash round.
        while i <= events + stride {
            if crash_case(combo, seed, CrashEventKind::Flush, i) {
                tripped += 1;
            }
            armed += 1;
            i += stride;
        }
    }
    if crash_points > 0 {
        assert!(
            tripped >= armed / 3,
            "{}: only {tripped}/{armed} crash plans tripped",
            combo.name
        );
    }
}

// ---------------------------------------------------------------------------
// Determinism
// ---------------------------------------------------------------------------

/// The acceptance bar for replayability: the same `DUDE_SIM_SEED` drives
/// the full pipeline through a byte-identical schedule trace twice.
#[test]
fn same_seed_replays_byte_identical_trace() {
    let _g = lock_tests();
    let combo = Combo {
        name: "replay pt=1 pg=8 fw=2 rt=1",
        cfg: cfg(1, 8, 2, false, 1),
        workload: Workload::Bank,
        threads: 3,
        ops: 8,
    };
    let seed = env_u64("DUDE_SIM_SEED").unwrap_or(7);
    let mut traces = Vec::new();
    for _ in 0..2 {
        let nvm = fresh_nvm();
        let run = run_sim(
            &nvm,
            combo.cfg,
            combo.workload,
            combo.threads,
            combo.ops,
            seed,
            None,
        )
        .unwrap_or_else(|e| fail_seed(seed, combo.name, &e));
        assert!(!run.trace.is_empty(), "trace must record the schedule");
        traces.push(run.trace);
    }
    assert_eq!(
        traces[0], traces[1],
        "same seed must replay a byte-identical schedule trace"
    );
    // And a different seed explores a different schedule.
    let nvm = fresh_nvm();
    let other = run_sim(
        &nvm,
        combo.cfg,
        combo.workload,
        combo.threads,
        combo.ops,
        seed ^ 0xDEAD_BEEF,
        None,
    )
    .unwrap_or_else(|e| fail_seed(seed ^ 0xDEAD_BEEF, combo.name, &e));
    assert_ne!(
        traces[0], other.trace,
        "different seeds must explore different schedules"
    );
}

// ---------------------------------------------------------------------------
// Schedule sweeps over the config matrix
// ---------------------------------------------------------------------------

#[test]
fn schedules_baseline_bank() {
    explore(
        &Combo {
            name: "sim pt=1 pg=1 rt=1",
            cfg: cfg(1, 1, 1, false, 1),
            workload: Workload::Bank,
            threads: 3,
            ops: 8,
        },
        4,
    );
}

#[test]
fn schedules_two_persist_threads_bank() {
    explore(
        &Combo {
            name: "sim pt=2 pg=1 rt=1",
            cfg: cfg(2, 1, 1, false, 1),
            workload: Workload::Bank,
            threads: 3,
            ops: 8,
        },
        0,
    );
}

#[test]
fn schedules_grouped_flush_workers_bank() {
    explore(
        &Combo {
            name: "sim pt=seq pg=8 fw=2 rt=1",
            cfg: cfg(1, 8, 2, false, 1),
            workload: Workload::Bank,
            threads: 3,
            ops: 8,
        },
        4,
    );
}

#[test]
fn schedules_grouped_compressed_sharded_bank() {
    explore(
        &Combo {
            name: "sim pt=seq pg=8+lz fw=4 rt=4",
            cfg: cfg(1, 8, 4, true, 4),
            workload: Workload::Bank,
            threads: 3,
            ops: 8,
        },
        0,
    );
}

#[test]
fn schedules_sharded_counters() {
    explore(
        &Combo {
            name: "sim pt=1 pg=1 rt=4 counters",
            cfg: cfg(1, 1, 1, false, 4),
            workload: Workload::Counters,
            threads: 4,
            ops: 8,
        },
        4,
    );
}

// ---------------------------------------------------------------------------
// Mutation sharpness: the fuzzer must catch known-injected ordering bugs
// ---------------------------------------------------------------------------

/// Arms `mutation` and sweeps (schedule seed × crash point) until one
/// case fails an oracle; asserts detection within the default budget and
/// prints the failing seed's replay line.
fn assert_mutation_caught(mutation: Mutation, combo: &Combo) {
    let _g = lock_tests();
    let guard = MutationGuard::arm(mutation);
    let mut caught: Option<(u64, u64, String)> = None;
    'sweep: for seed in schedule_seeds() {
        // Counting pass under the mutation (its schedule differs from the
        // healthy one — the skipped fence removes yield points).
        let nvm = fresh_nvm();
        let run = run_sim(
            &nvm,
            combo.cfg,
            combo.workload,
            combo.threads,
            combo.ops,
            seed,
            None,
        );
        let events = match run {
            // A clean-run failure (e.g. an in-run assertion tripped by
            // the mutation) is already a detection.
            Err(e) => {
                caught = Some((seed, 0, e));
                break 'sweep;
            }
            Ok(_) => nvm
                .persistence_events()
                .count(CrashEventKind::Flush, StageFilter::Any),
        };
        // Crash points: a coarse stride over the whole flush timeline
        // (catches bugs with wide windows, like the dropped group fence)
        // plus every point in the tail (the off-by-one frontier publish
        // is only exposed in the shutdown drain, where no later record
        // can repair the hole the premature checkpoint leaves).
        let stride = (events / 8).max(1);
        let mut points: Vec<u64> = (1..=events).step_by(stride as usize).collect();
        points.extend(events.saturating_sub(11).max(1)..=events);
        points.sort_unstable();
        points.dedup();
        for i in points {
            let plan = CrashPlan::at_nth(CrashEventKind::Flush, i).for_stage(StageFilter::Any);
            let nvm = fresh_nvm();
            match run_sim(
                &nvm,
                combo.cfg,
                combo.workload,
                combo.threads,
                combo.ops,
                seed,
                Some(plan),
            ) {
                Err(e) => {
                    caught = Some((seed, i, e));
                    break 'sweep;
                }
                Ok(run) => {
                    nvm.apply_planned_crash();
                    if let Err(e) =
                        check_recovery(&nvm, &combo.cfg, combo.workload, &run, combo.ops)
                    {
                        caught = Some((seed, i, e));
                        break 'sweep;
                    }
                }
            }
        }
    }
    drop(guard);
    let (seed, point, err) = caught.unwrap_or_else(|| {
        panic!(
            "{}: injected mutation {mutation:?} survived the default seed budget — \
             the schedule fuzzer has lost its sharpness",
            combo.name
        )
    });
    // The detection one-liner the issue asks for: the seed that found
    // the injected bug, ready for replay.
    eprintln!("DUDE_SIM_SEED={seed}");
    eprintln!("mutation {mutation:?} caught at crash point {point} under seed {seed}: {err}");
}

#[test]
fn mutation_dropped_group_fence_is_caught() {
    assert_mutation_caught(
        Mutation::SkipGroupFence,
        &Combo {
            name: "mutation-A pt=seq pg=8 fw=2 rt=1",
            cfg: cfg(1, 8, 2, false, 1),
            workload: Workload::Bank,
            threads: 3,
            ops: 8,
        },
    );
}

#[test]
fn mutation_frontier_off_by_one_is_caught() {
    assert_mutation_caught(
        Mutation::FrontierOffByOne,
        &Combo {
            name: "mutation-B pt=1 pg=1 rt=4",
            cfg: cfg(1, 1, 1, false, 4),
            workload: Workload::Bank,
            threads: 3,
            ops: 8,
        },
    );
}
