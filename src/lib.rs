//! Umbrella crate for the DudeTM reproduction.
//!
//! This workspace reproduces *"DudeTM: Building Durable Transactions with
//! Decoupling for Persistent Memory"* (Liu et al., ASPLOS 2017) as a set of
//! Rust crates; this root crate re-exports the pieces and hosts the
//! runnable examples (`examples/`) and cross-crate integration tests
//! (`tests/`).
//!
//! Start with [`dudetm`] (the decoupled runtime), then:
//!
//! * [`dude_nvm`] — the emulated persistent-memory device,
//! * [`dude_stm`] / [`dude_htm`] — the TM engines,
//! * [`dude_baselines`] — Mnemosyne-like / NVML-like comparison systems,
//! * [`dude_workloads`] — the paper's benchmarks,
//! * [`dude_txapi`] — the uniform transaction API they all share.
//!
//! # Quickstart
//!
//! ```
//! use dude_nvm::{Nvm, NvmConfig};
//! use dude_txapi::{PAddr, TxnSystem, TxnThread};
//! use dudetm::{DudeTm, DudeTmConfig};
//! use std::sync::Arc;
//!
//! let nvm = Arc::new(Nvm::new(NvmConfig::for_testing(16 << 20)));
//! let dude = DudeTm::create_stm(Arc::clone(&nvm), DudeTmConfig::small(4 << 20));
//! let mut thread = dude.register_thread();
//! let out = thread.run(&mut |tx| tx.write_word(PAddr::new(64), 7));
//! thread.wait_durable(out.info().unwrap().tid.unwrap());
//! ```

pub use dude_baselines as baselines;
pub use dude_compress as compress;
pub use dude_htm as htm;
pub use dude_nvm as nvm;
pub use dude_stm as stm;
pub use dude_txapi as txapi;
pub use dude_workloads as workloads;
pub use dudetm as core;
